// The collection of Pastry nodes plus the simulated transport between them.
//
// All inter-node traffic flows through send_route / send_direct, which
// schedule delivery on the discrete-event simulator with a latency from the
// datacenter topology and charge per-sender message/byte counters (the raw
// data behind the paper's Fig. 15 overhead CDFs).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "ckpt/format.h"
#include "net/topology.h"
#include "pastry/pastry_node.h"
#include "sim/fault_plan.h"
#include "sim/parallel_runner.h"
#include "sim/simulator.h"

namespace vb::obs {
class TraceRecorder;
class MetricsRegistry;
}  // namespace vb::obs

namespace vb::pastry {

/// One fleet slot for bootstrap_bulk: a CA-assigned node id and the host it
/// runs on.  Ids must be unique; hosts must exist in the topology.
struct BulkFleetEntry {
  U128 id;
  net::HostId host = -1;
};

/// Per-node traffic counters, split by message category.
struct TrafficCounters {
  static constexpr int kCategories = 7;
  std::array<std::uint64_t, kCategories> msgs_sent{};
  std::array<std::uint64_t, kCategories> bytes_sent{};
  /// Messages this node sent that the fault plan destroyed in flight
  /// (loss or partition) / duplicated in flight.  Kept outside the
  /// category arrays: the sender is still charged for the send, these
  /// record what the network did to it afterwards.
  std::uint64_t fault_dropped_msgs = 0;
  std::uint64_t fault_dup_msgs = 0;

  std::uint64_t total_msgs() const;
  std::uint64_t total_bytes() const;
  void add(MsgCategory c, std::size_t bytes);
  void reset();
};

class PastryNetwork {
 public:
  /// The network borrows the simulator and topology; both must outlive it.
  PastryNetwork(sim::Simulator* simulator, const net::Topology* topo);

  /// Creates a node and instantly bootstraps its tables from the global
  /// view ("oracle" bootstrap — used by large benches where the paper also
  /// starts from an already-formed FreePastry ring).
  PastryNode& add_node_oracle(const U128& id, net::HostId host);

  /// Creates the entire fleet at once and synthesizes the canonical
  /// converged overlay state directly — sorted-id leaf sets, digit-trie
  /// routing tables, proximity neighbor sets — in O(N log N) without
  /// sending a single message.  Bit-identical to bootstrapping the same
  /// fleet one node at a time with add_node_oracle, and entry-for-entry
  /// equal to what sequential protocol joins converge to (locked by
  /// tests/pastry/bulk_bootstrap_property_test.cc).  The network must be
  /// empty.  Defined in bulk_bootstrap.cc; see docs/ARCHITECTURE.md,
  /// "Bulk-join bootstrap".
  void bootstrap_bulk(std::vector<BulkFleetEntry> fleet);

  /// Creates a node empty and runs the real message-based join protocol
  /// through `bootstrap`.  Caller runs the simulator to completion (or for
  /// long enough) before relying on the node's tables.
  PastryNode& add_node_join(const U128& id, net::HostId host,
                            const NodeHandle& bootstrap);

  /// Marks a node dead.  In-flight and future messages to it trigger the
  /// sender's failure handling (purge + reroute), like a TCP timeout would.
  void kill_node(const U128& id);

  /// Graceful departure: the node announces itself to all peers (they purge
  /// it eagerly) and dies *immediately after* the farewells are put on the
  /// wire.  Death is atomic with the announcement — no window exists in
  /// which a racing message can still be delivered to the departed node
  /// (messages already in flight bounce to the sender's failure handler,
  /// exactly like a crash).
  void depart_node(const U128& id);

  bool is_alive(const U128& id) const;
  PastryNode* find(const U128& id);
  const PastryNode* find(const U128& id) const;
  PastryNode& at(const U128& id);

  /// Live nodes in id order.
  std::vector<PastryNode*> nodes();
  std::vector<const PastryNode*> nodes() const;
  std::size_t size() const;

  /// Ground truth: the live node whose id is numerically closest to `key`
  /// (what correct routing must converge to).  Network must be non-empty.
  NodeHandle global_closest(const U128& key) const;

  // --- transport (used by PastryNode) -----------------------------------
  void send_route(const NodeHandle& from, const NodeHandle& to, RouteMsg msg);
  void send_direct(const NodeHandle& from, const NodeHandle& to,
                   PayloadPtr payload, MsgCategory category);

  // --- chaos injection ----------------------------------------------------
  /// Attaches a fault plan to the transport choke point; nullptr detaches.
  /// The plan must outlive the network (tests own it on the stack).  Every
  /// send consults the plan exactly once, so (seed, plan) replays are
  /// bit-identical.
  void set_fault_plan(sim::FaultPlan* plan) { fault_plan_ = plan; }
  sim::FaultPlan* fault_plan() const { return fault_plan_; }
  /// Messages destroyed / duplicated by the fault plan, summed over nodes.
  std::uint64_t total_fault_dropped() const;
  std::uint64_t total_fault_dups() const;

  // --- instrumentation ---------------------------------------------------
  /// Attaches a trace recorder; nullptr (the default) detaches.  Recording
  /// is passive — it never schedules events or draws randomness — so sim
  /// outcomes are bit-identical with tracing on or off, and the hot paths
  /// pay a single null-pointer test when tracing is disabled.  In sharded
  /// mode the recorder is switched to per-shard buffers automatically.
  void set_trace(obs::TraceRecorder* t);
  obs::TraceRecorder* trace() const { return trace_; }

  /// Pushes transport roll-ups into `reg` as `pastry.*` / `fault.*` series:
  /// per-category message/byte counters, totals, fault drop/dup counts, and
  /// a per-node total-messages distribution.  Idempotent: counters are
  /// overwritten and distributions rebuilt on every call.
  void export_metrics(obs::MetricsRegistry& reg) const;

  const TrafficCounters& counters(const U128& id) const;
  /// Snapshot of total messages sent per live node (Fig. 15 input).
  std::vector<std::uint64_t> per_node_msgs() const;
  std::vector<std::uint64_t> per_node_bytes() const;
  void reset_counters();
  std::uint64_t total_msgs() const;

  /// Number of hops the most recent delivered route took (test aid).
  /// Serial mode only — in sharded mode concurrent deliveries would race on
  /// one slot, so the note becomes a no-op.
  void note_delivery_hops(int hops) {
    if (runner_ == nullptr) last_delivery_hops_ = hops;
  }
  int last_delivery_hops() const { return last_delivery_hops_; }

  sim::Simulator& simulator() { return *sim_; }
  const net::Topology& topology() const { return *topo_; }

  // --- sharded (parallel) mode -------------------------------------------
  /// Switches the transport into ParallelRunner mode: host h's node stack
  /// belongs to shard `shard_of_host[h]`, every node event (delivery,
  /// retransmit timer, trace stamp) runs on that shard's simulator, and
  /// sends between hosts in different shards travel through the runner's
  /// mailboxes.  Requirements (see docs/ARCHITECTURE.md, "Sharding
  /// contract"):
  ///   * call after nodes exist (oracle bootstrap) and before any traffic;
  ///   * the map must be rack-aligned and runner->lookahead_s() must not
  ///     exceed Topology::min_cross_shard_latency_s(map) — verified here;
  ///   * membership changes (kill/depart/add) only between run_until calls;
  ///   * an attached FaultPlan is consulted via decide_keyed — verdicts are
  ///     a pure function of (plan seed, sender node, per-sender ordinal),
  ///     so chaos replays bit-identically at any thread count.
  void enable_sharding(sim::ParallelRunner* runner,
                       std::vector<int> shard_of_host);
  bool sharded() const { return runner_ != nullptr; }
  int shard_of(net::HostId h) const {
    return runner_ == nullptr
               ? 0
               : shard_of_host_[static_cast<std::size_t>(h)];
  }

  /// The simulator that drives host `h` — its shard's in sharded mode, the
  /// global one otherwise.  All per-node scheduling and now() reads go
  /// through this so node code is oblivious to the execution mode.
  sim::Simulator& simulator_for(net::HostId h) {
    return runner_ == nullptr ? *sim_ : runner_->shard(shard_of(h));
  }
  double now_for(net::HostId h) { return simulator_for(h).now(); }

  /// Runs one stabilization round on every live node (benches call this
  /// between protocol phases to mimic Pastry's periodic maintenance).
  void stabilize_all();

  // --- checkpoint/restore (src/ckpt) -------------------------------------
  /// Scheduled-but-undelivered transport copies (primary, fault duplicates,
  /// cross-shard failure bounces).  Zero is the quiesce-barrier condition:
  /// every pending event is then a periodic tick or a component-owned timer.
  /// Relaxed atomics — only read at barriers, never raced mid-window
  /// (each counter is touched by its destination shard's worker plus
  /// senders *scheduling into* that shard, which the runner's mailbox
  /// machinery already orders).
  std::int64_t wire_in_flight() const {
    std::int64_t n = 0;
    for (std::size_t s = 0; s < wire_shards_; ++s) {
      n += wire_[s].n.load(std::memory_order_relaxed);
    }
    return n;
  }

  /// Serializes per-node transport entries (liveness, traffic counters,
  /// keyed-fault ordinals) and each node's protocol state.  Must be called
  /// at a quiesce barrier; throws CkptError if wire_in_flight() != 0.
  void ckpt_save(ckpt::Writer& w) const;

  /// Restores entries and nodes.  The reconstruction must contain the same
  /// node ids (all alive — restore re-kills the dead ones); mismatches
  /// throw CkptError.
  void ckpt_restore(ckpt::Reader& r);

 private:
  struct Entry {
    std::unique_ptr<PastryNode> node;
    TrafficCounters counters;
    /// Per-sender message ordinal — the counter half of the keyed fault
    /// stream in sharded mode.  Only the sender's own shard touches it.
    std::uint64_t fault_seq = 0;
    bool alive = true;
  };

  Entry& entry_of(const U128& id);

  /// Consults the fault plan (if any) for one message from→to.  Returns the
  /// default no-fault decision when no plan is attached.  `sender` supplies
  /// the keyed-stream ordinal in sharded mode.
  sim::FaultDecision consult_fault_plan(const NodeHandle& from,
                                        const NodeHandle& to, Entry& sender);

  // One in-flight counter per destination shard, cache-line padded so shard
  // workers don't false-share.  A raw array: std::vector<atomic> cannot be
  // resized, and the count is fixed once sharding is configured.
  struct alignas(64) WireCounter {
    std::atomic<std::int64_t> n{0};
  };
  void wire_inc(net::HostId dst) {
    wire_[static_cast<std::size_t>(shard_of(dst))].n.fetch_add(
        1, std::memory_order_relaxed);
  }
  void wire_dec(net::HostId dst) {
    wire_[static_cast<std::size_t>(shard_of(dst))].n.fetch_sub(
        1, std::memory_order_relaxed);
  }

  sim::Simulator* sim_;
  const net::Topology* topo_;
  std::map<U128, Entry> nodes_;  // ordered: gives ring order for oracle ops
  sim::FaultPlan* fault_plan_ = nullptr;
  obs::TraceRecorder* trace_ = nullptr;
  sim::ParallelRunner* runner_ = nullptr;  // non-null = sharded mode
  std::vector<int> shard_of_host_;
  int last_delivery_hops_ = 0;
  std::unique_ptr<WireCounter[]> wire_;
  std::size_t wire_shards_ = 1;
};

}  // namespace vb::pastry
