// Pastry node identity.
//
// A Pastry node is identified by a 128-bit id on a circular id space and
// lives on a physical host; the pair travels together as a NodeHandle (id +
// location), mirroring Pastry's practice of storing "IP address, latency
// information, and Pastry ID" in routing state (§II.A.1 of the paper).
#pragma once

#include <functional>
#include <string>

#include "common/u128.h"
#include "net/topology.h"

namespace vb::pastry {

/// Number of base-2^b digits in an id (b = 4 -> 32 hex digits).
inline constexpr int kIdDigits = 32;
/// Digit alphabet size (2^b with b = 4).
inline constexpr int kIdBase = 16;

/// Reference to a node: its ring id plus its physical host (the proximity
/// metric and message latency are functions of the host).
struct NodeHandle {
  U128 id;
  net::HostId host = -1;

  friend bool operator==(const NodeHandle& a, const NodeHandle& b) {
    return a.id == b.id;
  }
  friend bool operator!=(const NodeHandle& a, const NodeHandle& b) {
    return !(a == b);
  }

  bool valid() const { return host >= 0; }
  std::string to_string() const;
};

/// Invalid/absent handle.
inline const NodeHandle kNoHandle{};

}  // namespace vb::pastry

template <>
struct std::hash<vb::pastry::NodeHandle> {
  std::size_t operator()(const vb::pastry::NodeHandle& h) const noexcept {
    return static_cast<std::size_t>(h.id.lo() ^ (h.id.hi() * 0x9E3779B97F4A7C15ULL));
  }
};
