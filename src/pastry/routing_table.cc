#include "pastry/routing_table.h"

namespace vb::pastry {

RoutingTable::RoutingTable(const U128& owner)
    : owner_(owner),
      cells_(static_cast<std::size_t>(kIdDigits) * kIdBase) {}

bool RoutingTable::consider(const NodeHandle& candidate, int proximity) {
  if (candidate.id == owner_) return false;
  int row = shared_prefix_digits(owner_, candidate.id);
  // row == kIdDigits would mean identical ids, excluded above.
  int col = candidate.id.digit(row);
  auto& cell = cells_[static_cast<std::size_t>(cell_index(row, col))];
  if (!cell.has_value()) {
    cell = RouteEntry{candidate, proximity};
    ++populated_;
    return true;
  }
  if (cell->node == candidate) {
    if (proximity < cell->proximity) {
      cell->proximity = proximity;
      return true;
    }
    return false;
  }
  // Total order on candidates: proximity first, numeric id as the
  // tie-break.  Each cell therefore converges to the unique minimum over
  // every candidate ever offered, independent of arrival order — the
  // bulk-join synthesizer (bulk_bootstrap.cc) relies on this to produce
  // state bit-identical to any sequence of learn() calls with the same
  // candidate coverage.
  if (proximity < cell->proximity ||
      (proximity == cell->proximity && candidate.id < cell->node.id)) {
    cell = RouteEntry{candidate, proximity};
    return true;
  }
  return false;
}

bool RoutingTable::remove(const NodeHandle& node) {
  if (node.id == owner_) return false;
  int row = shared_prefix_digits(owner_, node.id);
  int col = node.id.digit(row);
  auto& cell = cells_[static_cast<std::size_t>(cell_index(row, col))];
  if (cell.has_value() && cell->node == node) {
    cell.reset();
    --populated_;
    return true;
  }
  return false;
}

std::optional<NodeHandle> RoutingTable::lookup(int row, int col) const {
  const NodeHandle* n = lookup_ptr(row, col);
  if (n == nullptr) return std::nullopt;
  return *n;
}

std::vector<NodeHandle> RoutingTable::all_entries() const {
  std::vector<NodeHandle> out;
  out.reserve(populated_);
  for (const auto& cell : cells_) {
    if (cell.has_value()) out.push_back(cell->node);
  }
  return out;
}

std::vector<NodeHandle> RoutingTable::row_entries(int row) const {
  std::vector<NodeHandle> out;
  if (row < 0 || row >= kIdDigits) return out;
  for (int col = 0; col < kIdBase; ++col) {
    const auto& cell = cells_[static_cast<std::size_t>(cell_index(row, col))];
    if (cell.has_value()) out.push_back(cell->node);
  }
  return out;
}

}  // namespace vb::pastry
