#include "pastry/pastry_node.h"

#include <algorithm>
#include <iterator>

#include "ckpt/payload_codec.h"
#include "obs/trace.h"
#include "pastry/pastry_internal.h"
#include "pastry/pastry_network.h"

namespace vb::pastry {

PastryNode::PastryNode(NodeHandle handle, PastryNetwork* network, int leaf_half,
                       int neighbor_capacity)
    : handle_(handle),
      network_(network),
      table_(handle.id),
      leafs_(handle.id, leaf_half),
      neighbors_(handle.host, neighbor_capacity) {}

void PastryNode::add_app(PastryApp* app) { apps_.push_back(app); }

int PastryNode::proximity_to(const NodeHandle& n) const {
  return static_cast<int>(network_->topology().proximity(handle_.host, n.host));
}

void PastryNode::route(const U128& key, PayloadPtr payload,
                       MsgCategory category) {
  RouteMsg msg;
  msg.key = key;
  msg.payload = std::move(payload);
  msg.source = handle_;
  msg.category = category;
  msg.hops = 0;
  if (obs::TraceRecorder* tr = network_->trace()) {
    // Adopt the payload's chain id if it has one (e.g. a traced anycast
    // being routed), else mint a fresh id for this route.
    std::uint64_t payload_trace = msg.payload ? msg.payload->trace_id() : 0;
    msg.trace_id = payload_trace != 0 ? payload_trace : tr->new_trace_id();
    tr->begin(network_->simulator_for(handle_.host).now(), msg.trace_id,
              static_cast<int>(handle_.host), "pastry.route", "pastry");
  }
  handle_route_msg(std::move(msg));
}

void PastryNode::send_direct(const NodeHandle& dest, PayloadPtr payload,
                             MsgCategory category) {
  network_->send_direct(handle_, dest, std::move(payload), category);
}

void PastryNode::send_reliable(const NodeHandle& dest, PayloadPtr payload,
                               MsgCategory category) {
  auto env = std::make_shared<internal::ReliableEnvelope>();
  env->inner = std::move(payload);
  env->inner_category = category;
  env->seq = next_reliable_seq_++;
  env->sender = handle_;
  if (obs::TraceRecorder* tr = network_->trace()) {
    // One span covers every copy of this envelope: the original send, all
    // retransmissions, and the eventual ack.  Inherit the inner payload's
    // chain id when it has one so the reliable hop nests in its chain.
    std::uint64_t inner_trace = env->inner ? env->inner->trace_id() : 0;
    env->trace = inner_trace != 0 ? inner_trace : tr->new_trace_id();
    tr->instant(network_->simulator_for(handle_.host).now(), env->trace,
                static_cast<int>(handle_.host), "rel.send", "reliable", "seq",
                static_cast<double>(env->seq));
  }

  PendingReliable pending;
  pending.dest = dest;
  pending.envelope = env;
  std::uint64_t seq = env->seq;
  pending.timer = network_->simulator_for(handle_.host).schedule_in(
      pending.rto_s, [this, seq]() { retransmit_reliable(seq); });
  pending_reliable_.emplace(seq, std::move(pending));

  network_->send_direct(handle_, dest, std::move(env), category);
}

void PastryNode::retransmit_reliable(std::uint64_t seq) {
  auto it = pending_reliable_.find(seq);
  if (it == pending_reliable_.end()) return;  // acked since the timer fired
  PendingReliable& p = it->second;
  if (p.attempts >= kReliableMaxAttempts) {
    // Give up: the peer is dead, partitioned past our patience, or the acks
    // keep vanishing.  The protocol layers above (heartbeats, periodic
    // maintenance, query timeouts) own recovery from here.
    pending_reliable_.erase(it);
    return;
  }
  p.attempts += 1;
  p.rto_s = std::min(p.rto_s * 2.0, kReliableMaxRtoS);
  p.timer = network_->simulator_for(handle_.host).schedule_in(
      p.rto_s, [this, seq]() { retransmit_reliable(seq); });
  if (obs::TraceRecorder* tr = network_->trace()) {
    tr->instant(network_->simulator_for(handle_.host).now(), p.envelope->trace_id(),
                static_cast<int>(handle_.host), "rel.retransmit", "reliable",
                "seq", static_cast<double>(seq), "attempt",
                static_cast<double>(p.attempts));
  }
  network_->send_direct(handle_, p.dest, p.envelope, MsgCategory::kRetransmit);
}

void PastryNode::fail_pending_reliable_to(const NodeHandle& dead) {
  for (auto it = pending_reliable_.begin(); it != pending_reliable_.end();) {
    if (it->second.dest.id == dead.id) {
      network_->simulator_for(handle_.host).cancel(it->second.timer);
      it = pending_reliable_.erase(it);
    } else {
      ++it;
    }
  }
}

NodeHandle PastryNode::next_hop(const U128& key) const {
  if (key == handle_.id) return handle_;

  // Rule 1: the leaf set covers the key -> the numerically closest member
  // (possibly ourselves) is the destination.
  if (leafs_.covers(key)) return leafs_.closest(key, handle_);

  // Rule 2: routing table cell for (shared prefix length, next digit).
  int row = shared_prefix_digits(handle_.id, key);
  int col = key.digit(row);
  if (const NodeHandle* entry = table_.lookup_ptr(row, col)) return *entry;

  // Rule 3 (rare case): any known node that shares at least as long a prefix
  // with the key and is numerically closer to it than we are.  The result is
  // order-independent (closer_on_ring is a strict total preference), so the
  // three tables are scanned in place — route() allocates nothing per hop.
  NodeHandle best = handle_;
  auto try_candidate = [&](const NodeHandle& n) {
    if (shared_prefix_digits(n.id, key) >= row &&
        closer_on_ring(key, n.id, best.id)) {
      best = n;
    }
  };
  leafs_.for_each(try_candidate);
  table_.for_each_entry(try_candidate);
  neighbors_.for_each(try_candidate);
  return best;
}

void PastryNode::learn(const NodeHandle& node) {
  if (node.id == handle_.id || !node.valid()) return;
  int prox = proximity_to(node);
  table_.consider(node, prox);
  leafs_.consider(node);
  neighbors_.consider(node, network_->topology());
}

void PastryNode::purge(const NodeHandle& node) {
  bool known = false;
  known |= table_.remove(node);
  known |= leafs_.remove(node);
  known |= neighbors_.remove(node);
  if (known) {
    for (PastryApp* app : apps_) app->on_node_failed(*this, node);
  }
}

void PastryNode::begin_join(const NodeHandle& bootstrap) {
  learn(bootstrap);
  join_bootstrap_ = bootstrap;
  join_attempts_ = 0;
  send_join_request();
}

void PastryNode::send_join_request() {
  join_attempts_ += 1;
  auto req = std::make_shared<internal::JoinRequest>();
  req->newcomer = handle_;
  RouteMsg msg;
  msg.key = handle_.id;
  msg.payload = std::move(req);
  msg.source = handle_;
  msg.category = MsgCategory::kOverlayMaintenance;
  msg.hops = 1;
  // The join is routed fire-and-forget, so a lossy network can eat it (or
  // the leaf-set transfer coming back).  Re-issue until that transfer
  // arrives; the whole join protocol is idempotent on duplicates.
  join_timer_ = network_->simulator_for(handle_.host)
                    .schedule_in(kJoinRetryS, [this]() { retry_join(); });
  network_->send_route(handle_, join_bootstrap_, std::move(msg));
}

void PastryNode::retry_join() {
  join_timer_ = sim::kInvalidEventId;
  if (!join_bootstrap_.valid()) return;  // join already completed
  if (join_attempts_ >= kJoinMaxAttempts) {
    join_bootstrap_ = NodeHandle{};  // give up; periodic repair owns recovery
    return;
  }
  send_join_request();
}

void PastryNode::start_ring_scan() {
  if (scan_started_) return;
  scan_started_ = true;
  scan_active_ = true;
  scan_cursor_ = U128{};
  // Seed the frontier with everything the join harvested; each visited
  // node's reply extends it with that node's leaf-set members, which always
  // include the next unvisited successors — the sweep never skips a live
  // node.
  table_.for_each_entry([this](const NodeHandle& n) { scan_note(n); });
  leafs_.for_each([this](const NodeHandle& n) { scan_note(n); });
  neighbors_.for_each([this](const NodeHandle& n) { scan_note(n); });
  scan_advance();
}

void PastryNode::scan_note(const NodeHandle& n) {
  if (!scan_active_ || !n.valid() || n.id == handle_.id) return;
  U128 d = n.id - handle_.id;  // clockwise ring distance
  if (!(scan_cursor_ < d)) return;  // behind the sweep: visited or in flight
  scan_candidates_.emplace(d, n);
}

void PastryNode::scan_advance() {
  while (!scan_candidates_.empty() &&
         !(scan_cursor_ < scan_candidates_.begin()->first)) {
    scan_candidates_.erase(scan_candidates_.begin());
  }
  if (scan_candidates_.empty()) {
    scan_active_ = false;
    scan_target_ = NodeHandle{};
    return;
  }
  auto it = scan_candidates_.begin();
  scan_cursor_ = it->first;
  scan_target_ = it->second;
  scan_candidates_.erase(it);
  auto ping = std::make_shared<internal::RingScan>();
  ping->origin = handle_;
  scan_timer_ = network_->simulator_for(handle_.host)
                    .schedule_in(kScanStepTimeoutS,
                                 [this]() { scan_step_timeout(); });
  send_reliable(scan_target_, std::move(ping),
                MsgCategory::kOverlayMaintenance);
}

void PastryNode::scan_step_timeout() {
  scan_timer_ = sim::kInvalidEventId;
  if (!scan_active_) return;
  // The target outlived the reliable channel's patience (dead or partitioned
  // away); skip it and keep sweeping.
  scan_target_ = NodeHandle{};
  scan_advance();
}

void PastryNode::stabilize() {
  auto send_exchange = [this](const NodeHandle& to) {
    if (!to.valid()) return;
    auto x = std::make_shared<internal::LeafExchange>();
    x->leaves = leafs_.members();
    x->leaves.push_back(handle_);
    x->is_reply = false;
    send_direct(to, std::move(x), MsgCategory::kOverlayMaintenance);
  };
  send_exchange(leafs_.farthest_cw());
  send_exchange(leafs_.farthest_ccw());
}

void PastryNode::announce_departure() {
  auto bye = std::make_shared<internal::Depart>();
  bye->who = handle_;
  std::vector<U128> notified;
  auto notify = [&](const NodeHandle& n) {
    if (std::find(notified.begin(), notified.end(), n.id) != notified.end()) {
      return;
    }
    notified.push_back(n.id);
    send_direct(n, bye, MsgCategory::kOverlayMaintenance);
  };
  leafs_.for_each(notify);
  table_.for_each_entry(notify);
  // Neighbor farewells go out in members() order (nearest first) so the
  // send sequence — and with it event tie-breaking — matches historic runs.
  for (const NodeHandle& n : neighbors_.members()) notify(n);
}

void PastryNode::maintain_routing_table() {
  // Scan forward from the last maintained row to the next row that has at
  // least one entry, and ask one of its members for its version of the row.
  for (int probe = 0; probe < kIdDigits; ++probe) {
    int row = (next_maintenance_row_ + probe) % kIdDigits;
    auto entries = table_.row_entries(row);
    if (entries.empty()) continue;
    auto req = std::make_shared<internal::RowRequest>();
    req->row = row;
    // Deterministic pick: rotate through the row's entries over rounds.
    const NodeHandle& peer =
        entries[static_cast<std::size_t>(next_maintenance_row_) % entries.size()];
    send_direct(peer, std::move(req), MsgCategory::kOverlayMaintenance);
    next_maintenance_row_ = row + 1;
    return;
  }
}

void PastryNode::handle_route_msg(RouteMsg msg) {
  // Pastry-internal join handling happens before any app sees the message.
  auto join = std::dynamic_pointer_cast<const internal::JoinRequest>(msg.payload);
  if (join && join->newcomer.id != handle_.id) {
    // Ship the routing rows the newcomer can reuse: rows 0..p where p is the
    // length of the prefix we share with it.
    auto state = std::make_shared<internal::StateTransfer>();
    int p = shared_prefix_digits(handle_.id, join->newcomer.id);
    for (int r = 0; r <= p && r < kIdDigits; ++r) {
      auto row = table_.row_entries(r);
      state->nodes.insert(state->nodes.end(), row.begin(), row.end());
    }
    state->nodes.push_back(handle_);
    send_direct(join->newcomer, state, MsgCategory::kOverlayMaintenance);
  }

  NodeHandle next = next_hop(msg.key);
  if (next == handle_) {
    if (join) {
      if (join->newcomer.id == handle_.id) return;  // our own join looped back
      // We are the numerically closest node: ship our leaf set, which seeds
      // the newcomer's leaf set (Pastry join, step 3).
      auto state = std::make_shared<internal::StateTransfer>();
      state->nodes = leafs_.members();
      state->nodes.push_back(handle_);
      state->from_delivery_node = true;
      send_direct(join->newcomer, state, MsgCategory::kOverlayMaintenance);
      return;
    }
    network_->note_delivery_hops(msg.hops);
    if (obs::TraceRecorder* tr = network_->trace()) {
      tr->end(network_->simulator_for(handle_.host).now(), msg.trace_id,
              static_cast<int>(handle_.host), "pastry.route", "pastry", "hops",
              static_cast<double>(msg.hops));
    }
    for (PastryApp* app : apps_) app->deliver(*this, msg);
    return;
  }

  if (!join) {
    for (PastryApp* app : apps_) {
      if (!app->forward(*this, msg, next)) return;  // absorbed by the app
    }
  }
  if (obs::TraceRecorder* tr = network_->trace()) {
    tr->instant(network_->simulator_for(handle_.host).now(), msg.trace_id,
                static_cast<int>(handle_.host), "pastry.hop", "pastry", "hop",
                static_cast<double>(msg.hops), "next_host",
                static_cast<double>(next.host));
  }
  msg.hops += 1;
  network_->send_route(handle_, next, std::move(msg));
}

void PastryNode::handle_direct_msg(const NodeHandle& from,
                                   const PayloadPtr& payload,
                                   MsgCategory category) {
  if (auto env =
          std::dynamic_pointer_cast<const internal::ReliableEnvelope>(payload)) {
    // Ack every copy — a lost ack must re-trigger one from the retransmit.
    auto ack = std::make_shared<internal::AckMsg>();
    ack->seq = env->seq;
    send_direct(from, std::move(ack), MsgCategory::kAck);
    auto& seen = seen_reliable_[env->sender.id];
    if (!seen.insert(env->seq).second) return;  // duplicate: drop after ack
    if (seen.size() > 4096) {
      // Deterministic prune: forget the oldest half.  Sequence numbers far
      // below the live window can no longer arrive as anything but stale
      // duplicates of long-acked sends.
      seen.erase(seen.begin(), std::next(seen.begin(), 2048));
    }
    handle_direct_msg(env->sender, env->inner, env->inner_category);
    return;
  }
  if (auto ack = std::dynamic_pointer_cast<const internal::AckMsg>(payload)) {
    auto it = pending_reliable_.find(ack->seq);
    if (it != pending_reliable_.end()) {
      if (obs::TraceRecorder* tr = network_->trace()) {
        tr->instant(network_->simulator_for(handle_.host).now(),
                    it->second.envelope->trace_id(),
                    static_cast<int>(handle_.host), "rel.acked", "reliable",
                    "seq", static_cast<double>(ack->seq), "attempts",
                    static_cast<double>(it->second.attempts));
      }
      network_->simulator_for(handle_.host).cancel(it->second.timer);
      pending_reliable_.erase(it);
    }
    return;
  }
  if (auto st = std::dynamic_pointer_cast<const internal::StateTransfer>(payload)) {
    for (const NodeHandle& n : st->nodes) learn(n);
    learn(from);
    if (st->from_delivery_node) {
      // The join's leaf-set transfer: stop re-issuing the JoinRequest.
      join_bootstrap_ = NodeHandle{};
      if (join_timer_ != sim::kInvalidEventId) {
        network_->simulator_for(handle_.host).cancel(join_timer_);
        join_timer_ = sim::kInvalidEventId;
      }
      // Leaf set received: announce ourselves to everyone we now know.
      auto ann = std::make_shared<internal::Announce>();
      ann->who = handle_;
      std::vector<NodeHandle> known = table_.all_entries();
      auto lm = leafs_.members();
      known.insert(known.end(), lm.begin(), lm.end());
      std::vector<U128> seen;
      for (const NodeHandle& n : known) {
        if (std::find(seen.begin(), seen.end(), n.id) != seen.end()) continue;
        seen.push_back(n.id);
        send_direct(n, ann, MsgCategory::kOverlayMaintenance);
      }
      start_ring_scan();
    }
    return;
  }
  if (auto sc = std::dynamic_pointer_cast<const internal::RingScan>(payload)) {
    learn(sc->origin);
    auto rep = std::make_shared<internal::RingScanReply>();
    rep->nodes = leafs_.members();
    rep->nodes.push_back(handle_);
    send_reliable(sc->origin, std::move(rep),
                  MsgCategory::kOverlayMaintenance);
    return;
  }
  if (auto sr =
          std::dynamic_pointer_cast<const internal::RingScanReply>(payload)) {
    for (const NodeHandle& n : sr->nodes) {
      learn(n);
      scan_note(n);
    }
    learn(from);
    if (scan_active_ && scan_target_.valid() &&
        from.id == scan_target_.id) {
      if (scan_timer_ != sim::kInvalidEventId) {
        network_->simulator_for(handle_.host).cancel(scan_timer_);
        scan_timer_ = sim::kInvalidEventId;
      }
      scan_target_ = NodeHandle{};
      scan_advance();
    }
    return;
  }
  if (auto ann = std::dynamic_pointer_cast<const internal::Announce>(payload)) {
    bool was_leaf_candidate = leafs_.covers(ann->who.id);
    learn(ann->who);
    if (was_leaf_candidate) {
      // Give the newcomer our neighborhood so its leaf set converges.
      auto x = std::make_shared<internal::LeafExchange>();
      x->leaves = leafs_.members();
      x->leaves.push_back(handle_);
      x->is_reply = true;
      send_direct(ann->who, std::move(x), MsgCategory::kOverlayMaintenance);
    }
    return;
  }
  if (auto lx = std::dynamic_pointer_cast<const internal::LeafExchange>(payload)) {
    for (const NodeHandle& n : lx->leaves) learn(n);
    learn(from);
    if (!lx->is_reply) {
      auto x = std::make_shared<internal::LeafExchange>();
      x->leaves = leafs_.members();
      x->leaves.push_back(handle_);
      x->is_reply = true;
      send_direct(from, std::move(x), MsgCategory::kOverlayMaintenance);
    }
    return;
  }
  if (auto bye = std::dynamic_pointer_cast<const internal::Depart>(payload)) {
    purge(bye->who);
    return;
  }
  if (auto req = std::dynamic_pointer_cast<const internal::RowRequest>(payload)) {
    auto rep = std::make_shared<internal::RowReply>();
    rep->row = req->row;
    rep->entries = table_.row_entries(req->row);
    rep->entries.push_back(handle_);
    send_direct(from, std::move(rep), MsgCategory::kOverlayMaintenance);
    return;
  }
  if (auto rep = std::dynamic_pointer_cast<const internal::RowReply>(payload)) {
    for (const NodeHandle& n : rep->entries) learn(n);
    return;
  }
  for (PastryApp* app : apps_) app->receive_direct(*this, from, payload, category);
}

void PastryNode::handle_send_failure(const NodeHandle& dead,
                                     RouteMsg* undelivered) {
  fail_pending_reliable_to(dead);
  purge(dead);
  if (scan_active_ && scan_target_.valid() && dead.id == scan_target_.id) {
    // The sweep's current target bounced; skip it without waiting for the
    // step timeout.
    if (scan_timer_ != sim::kInvalidEventId) {
      network_->simulator_for(handle_.host).cancel(scan_timer_);
      scan_timer_ = sim::kInvalidEventId;
    }
    scan_target_ = NodeHandle{};
    scan_advance();
  }
  if (undelivered != nullptr) {
    // Reroute around the failure with our repaired tables.
    handle_route_msg(std::move(*undelivered));
  }
}

void PastryNode::ckpt_save(ckpt::Writer& w) const {
  w.begin_section("node");
  w.i64(next_maintenance_row_);
  table_.ckpt_save(w);
  leafs_.ckpt_save(w);
  neighbors_.ckpt_save(w);
  w.u64(next_reliable_seq_);
  w.u32(static_cast<std::uint32_t>(seen_reliable_.size()));
  for (const auto& [sender, seqs] : seen_reliable_) {
    w.u128(sender);
    w.u32(static_cast<std::uint32_t>(seqs.size()));
    for (std::uint64_t s : seqs) w.u64(s);
  }
  sim::Simulator& sim = network_->simulator_for(handle_.host);
  w.u32(static_cast<std::uint32_t>(pending_reliable_.size()));
  for (const auto& [seq, p] : pending_reliable_) {
    w.u64(seq);
    w.u128(p.dest.id);
    w.i64(p.dest.host);
    ckpt::PayloadCodec::encode(w, *p.envelope);
    w.i64(p.attempts);
    w.f64(p.rto_s);
    // At a quiesce barrier an unacked send always has an armed timer: it is
    // cancelled only together with erasure (ack / give-up / peer death).
    w.f64(sim.event_time(p.timer));
    w.u64(sim.event_seq(p.timer));
  }
  // Join retry + ring-presence sweep.  Invariants at a quiesce barrier:
  // join_timer_ is armed iff join_bootstrap_ is valid, and scan_timer_ is
  // armed (with a valid target) iff the sweep is active.
  w.boolean(join_bootstrap_.valid());
  if (join_bootstrap_.valid()) {
    w.u128(join_bootstrap_.id);
    w.i64(join_bootstrap_.host);
    w.i64(join_attempts_);
    w.f64(sim.event_time(join_timer_));
    w.u64(sim.event_seq(join_timer_));
  }
  w.boolean(scan_started_);
  w.boolean(scan_active_);
  if (scan_active_) {
    w.u128(scan_cursor_);
    w.u128(scan_target_.id);
    w.i64(scan_target_.host);
    w.f64(sim.event_time(scan_timer_));
    w.u64(sim.event_seq(scan_timer_));
    w.u32(static_cast<std::uint32_t>(scan_candidates_.size()));
    for (const auto& [d, n] : scan_candidates_) {
      w.u128(n.id);
      w.i64(n.host);
    }
  }
  w.end_section();
}

void PastryNode::ckpt_restore(ckpt::Reader& r) {
  r.enter_section("node");
  next_maintenance_row_ = static_cast<int>(r.i64());
  table_.ckpt_restore(r);
  leafs_.ckpt_restore(r);
  neighbors_.ckpt_restore(r);
  next_reliable_seq_ = r.u64();
  seen_reliable_.clear();
  std::uint32_t senders = r.u32();
  for (std::uint32_t i = 0; i < senders; ++i) {
    U128 sender = r.u128();
    auto& seqs = seen_reliable_[sender];
    std::uint32_t n = r.u32();
    for (std::uint32_t k = 0; k < n; ++k) seqs.insert(r.u64());
  }
  sim::Simulator& sim = network_->simulator_for(handle_.host);
  for (auto& [seq, p] : pending_reliable_) sim.cancel(p.timer);
  pending_reliable_.clear();
  std::uint32_t pending_n = r.u32();
  for (std::uint32_t i = 0; i < pending_n; ++i) {
    std::uint64_t seq = r.u64();
    PendingReliable p;
    p.dest.id = r.u128();
    p.dest.host = static_cast<net::HostId>(r.i64());
    p.envelope = ckpt::PayloadCodec::decode(r);
    if (std::dynamic_pointer_cast<const internal::ReliableEnvelope>(
            p.envelope) == nullptr) {
      throw ckpt::CkptError(
          "pastry node restore: pending-reliable entry does not decode to a "
          "ReliableEnvelope");
    }
    p.attempts = static_cast<int>(r.i64());
    p.rto_s = r.f64();
    double fire = r.f64();
    std::uint64_t event_seq = r.u64();
    p.timer = sim.schedule_at_with_seq(
        fire, event_seq, [this, seq]() { retransmit_reliable(seq); });
    pending_reliable_.emplace(seq, std::move(p));
  }
  if (join_timer_ != sim::kInvalidEventId) sim.cancel(join_timer_);
  join_timer_ = sim::kInvalidEventId;
  join_bootstrap_ = NodeHandle{};
  join_attempts_ = 0;
  if (r.boolean()) {
    join_bootstrap_.id = r.u128();
    join_bootstrap_.host = static_cast<net::HostId>(r.i64());
    join_attempts_ = static_cast<int>(r.i64());
    double fire = r.f64();
    std::uint64_t event_seq = r.u64();
    join_timer_ =
        sim.schedule_at_with_seq(fire, event_seq, [this]() { retry_join(); });
  }
  if (scan_timer_ != sim::kInvalidEventId) sim.cancel(scan_timer_);
  scan_timer_ = sim::kInvalidEventId;
  scan_target_ = NodeHandle{};
  scan_cursor_ = U128{};
  scan_candidates_.clear();
  scan_started_ = r.boolean();
  scan_active_ = r.boolean();
  if (scan_active_) {
    scan_cursor_ = r.u128();
    scan_target_.id = r.u128();
    scan_target_.host = static_cast<net::HostId>(r.i64());
    double fire = r.f64();
    std::uint64_t event_seq = r.u64();
    scan_timer_ = sim.schedule_at_with_seq(fire, event_seq,
                                           [this]() { scan_step_timeout(); });
    std::uint32_t n_cand = r.u32();
    for (std::uint32_t i = 0; i < n_cand; ++i) {
      NodeHandle n;
      n.id = r.u128();
      n.host = static_cast<net::HostId>(r.i64());
      scan_candidates_.emplace(n.id - handle_.id, n);
    }
  }
  r.exit_section();
}

}  // namespace vb::pastry
