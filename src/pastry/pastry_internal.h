// Internal payloads used by Pastry's own join and stabilization protocols.
// Applications never see these: PastryNode consumes them before app upcalls.
#pragma once

#include <cstdint>
#include <vector>

#include "pastry/message.h"
#include "pastry/node_id.h"

namespace vb::pastry::internal {

/// Routed toward the newcomer's id; every node on the path ships routing
/// rows to the newcomer, and the delivery node ships its leaf set.
struct JoinRequest : Payload {
  NodeHandle newcomer;
  std::size_t wire_bytes() const override { return 32; }
  std::string name() const override { return "pastry.join"; }
};

/// Direct: rows of a routing table relevant to the newcomer.
struct StateTransfer : Payload {
  std::vector<NodeHandle> nodes;  // routing rows and/or leaf set members
  bool from_delivery_node = false;  // true when sent by the closest node
  std::size_t wire_bytes() const override { return 16 + 24 * nodes.size(); }
  std::string name() const override { return "pastry.state"; }
};

/// Direct: newcomer announces itself after assembling its tables.
struct Announce : Payload {
  NodeHandle who;
  std::size_t wire_bytes() const override { return 32; }
  std::string name() const override { return "pastry.announce"; }
};

/// Direct: reply to an Announce or stabilization probe with our leaf set,
/// so both sides converge on ring membership.
struct LeafExchange : Payload {
  std::vector<NodeHandle> leaves;
  bool is_reply = false;
  std::size_t wire_bytes() const override { return 16 + 24 * leaves.size(); }
  std::string name() const override { return "pastry.leafx"; }
};

/// Direct: sender is leaving the overlay gracefully; purge it immediately
/// instead of waiting for send-failure detection.
struct Depart : Payload {
  NodeHandle who;
  std::size_t wire_bytes() const override { return 32; }
  std::string name() const override { return "pastry.depart"; }
};

/// Direct: ask a peer for row `row` of its routing table (periodic
/// routing-table maintenance; Pastry repairs holes by fetching rows from
/// peers that share the corresponding prefix).
struct RowRequest : Payload {
  int row = 0;
  std::size_t wire_bytes() const override { return 24; }
  std::string name() const override { return "pastry.row_req"; }
};

/// Direct: the requested row's entries.
struct RowReply : Payload {
  int row = 0;
  std::vector<NodeHandle> entries;
  std::size_t wire_bytes() const override { return 24 + 24 * entries.size(); }
  std::string name() const override { return "pastry.row_rep"; }
};

/// Direct (reliable): one step of a newcomer's ring-presence sweep.  After
/// the join's leaf-set transfer the newcomer walks the whole ring clockwise
/// (each visited node's reply names its leaf-set members, which always
/// include the next unvisited successors), so *every* live node considers
/// the newcomer and the newcomer considers every live node — the mutual
/// full-coverage property that makes protocol joins converge to the same
/// canonical state the bulk-join synthesizer constructs directly.
struct RingScan : Payload {
  NodeHandle origin;
  std::size_t wire_bytes() const override { return 32; }
  std::string name() const override { return "pastry.scan"; }
};

/// Direct (reliable): reply to a RingScan — the recipient's leaf-set
/// members plus itself, feeding the origin's sweep frontier.
struct RingScanReply : Payload {
  std::vector<NodeHandle> nodes;
  std::size_t wire_bytes() const override { return 16 + 24 * nodes.size(); }
  std::string name() const override { return "pastry.scan_rep"; }
};

/// Direct: wrapper giving a payload at-least-once delivery with
/// receive-side dedup.  The receiver acks every copy (acks can be lost
/// too), processes the inner payload only for an unseen (sender, seq), and
/// unwraps it into the normal direct-message path.
struct ReliableEnvelope : Payload {
  PayloadPtr inner;
  MsgCategory inner_category = MsgCategory::kApp;
  std::uint64_t seq = 0;        ///< per-sender sequence number
  NodeHandle sender;            ///< dedup key (envelopes may be forwarded
                                ///  through transport duplicates)
  std::uint64_t trace = 0;      ///< span shared by every copy (retransmits)
  std::size_t wire_bytes() const override {
    return 16 + (inner ? inner->wire_bytes() : 0);
  }
  std::string name() const override { return "pastry.rel"; }
  std::uint64_t trace_id() const override {
    return trace != 0 ? trace : (inner ? inner->trace_id() : 0);
  }
};

/// Direct: acknowledges one ReliableEnvelope sequence number.
struct AckMsg : Payload {
  std::uint64_t seq = 0;
  std::size_t wire_bytes() const override { return 16; }
  std::string name() const override { return "pastry.ack"; }
};

}  // namespace vb::pastry::internal
