// Bulk-join bootstrap: boot an entire CA-assigned fleet in one shot.
//
// The oracle bootstrap (PastryNetwork::add_node_oracle) performs a mutual
// learn() against every existing node, which is O(N) per arrival and O(N^2)
// for a fleet — a 55-second wall at 16k servers that hard-caps every bench
// below datacenter scale.  bootstrap_bulk() constructs the same converged
// state directly in O(N log N):
//
//   * leaf sets: sort the ids once; each node's leaves are its `half`
//     successors and predecessors in sorted ring order;
//   * routing tables: a digit-trie recursion over the sorted ids — at depth
//     d a shared-prefix run splits into 16 contiguous child runs by digit d,
//     and the cell (d, c) winner for a node in child c' is the minimum
//     (proximity, id) candidate in child c, answered in O(1) from per-child
//     host/rack/pod -> min-id summaries;
//   * neighbor sets: every same-rack node, plus occupied hosts walked
//     outward from the owner's host until the remote quota is saturated.
//
// Equality with the oracle (and, via the ring-scan join sweep, with
// sequential protocol joins) holds because every component converges to the
// unique minimum under a total order — proximity then id for table cells,
// ring distance for leaves, (rank, id) for neighbors — so any feed that
// covers the winners produces bit-identical state.  Locked by
// tests/pastry/bulk_bootstrap_property_test.cc; invariants spelled out in
// docs/ARCHITECTURE.md ("Bulk-join bootstrap").
#pragma once

#include <vector>

#include "pastry/pastry_network.h"

namespace vb::pastry {

/// Free-function spelling of PastryNetwork::bootstrap_bulk for benches and
/// tests that read better without the member call.
inline void bulk_bootstrap(PastryNetwork& net,
                           std::vector<BulkFleetEntry> fleet) {
  net.bootstrap_bulk(std::move(fleet));
}

/// The common bench fleet shape: one server per host, ids[h] on host h.
std::vector<BulkFleetEntry> fleet_one_per_host(const std::vector<U128>& ids);

}  // namespace vb::pastry
