#include "pastry/pastry_network.h"

#include <stdexcept>
#include <string>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace vb::pastry {

std::uint64_t TrafficCounters::total_msgs() const {
  std::uint64_t t = 0;
  for (auto v : msgs_sent) t += v;
  return t;
}

std::uint64_t TrafficCounters::total_bytes() const {
  std::uint64_t t = 0;
  for (auto v : bytes_sent) t += v;
  return t;
}

void TrafficCounters::add(MsgCategory c, std::size_t bytes) {
  auto i = static_cast<std::size_t>(c);
  msgs_sent[i] += 1;
  bytes_sent[i] += bytes;
}

void TrafficCounters::reset() {
  msgs_sent.fill(0);
  bytes_sent.fill(0);
  fault_dropped_msgs = 0;
  fault_dup_msgs = 0;
}

PastryNetwork::PastryNetwork(sim::Simulator* simulator, const net::Topology* topo)
    : sim_(simulator), topo_(topo) {
  if (simulator == nullptr || topo == nullptr) {
    throw std::invalid_argument("PastryNetwork: null simulator/topology");
  }
  wire_ = std::make_unique<WireCounter[]>(1);
}

void PastryNetwork::enable_sharding(sim::ParallelRunner* runner,
                                    std::vector<int> shard_of_host) {
  if (runner == nullptr) {
    runner_ = nullptr;
    shard_of_host_.clear();
    wire_shards_ = 1;
    wire_ = std::make_unique<WireCounter[]>(1);
    return;
  }
  if (static_cast<int>(shard_of_host.size()) != topo_->num_hosts()) {
    throw std::invalid_argument("enable_sharding: bad shard map size");
  }
  for (int s : shard_of_host) {
    if (s < 0 || s >= runner->num_shards()) {
      throw std::invalid_argument("enable_sharding: shard index out of range");
    }
  }
  // The conservative-window contract: every cross-shard link must be at
  // least one lookahead long, or post() would be asked to schedule into the
  // current window.  Fail loudly at setup rather than mid-run.
  if (runner->lookahead_s() >
      topo_->min_cross_shard_latency_s(shard_of_host)) {
    throw std::invalid_argument(
        "enable_sharding: lookahead exceeds the minimum cross-shard latency");
  }
  runner_ = runner;
  shard_of_host_ = std::move(shard_of_host);
  wire_shards_ = static_cast<std::size_t>(runner_->num_shards());
  wire_ = std::make_unique<WireCounter[]>(wire_shards_);
  if (trace_ != nullptr) trace_->enable_sharded(runner_->num_shards());
}

void PastryNetwork::set_trace(obs::TraceRecorder* t) {
  trace_ = t;
  if (trace_ != nullptr && runner_ != nullptr) {
    trace_->enable_sharded(runner_->num_shards());
  }
}

PastryNetwork::Entry& PastryNetwork::entry_of(const U128& id) {
  auto it = nodes_.find(id);
  if (it == nodes_.end()) {
    throw std::out_of_range("PastryNetwork: unknown node " + id.short_hex());
  }
  return it->second;
}

PastryNode& PastryNetwork::add_node_oracle(const U128& id, net::HostId host) {
  if (nodes_.contains(id)) {
    throw std::invalid_argument("PastryNetwork: duplicate id " + id.short_hex());
  }
  Entry e;
  e.node = std::make_unique<PastryNode>(NodeHandle{id, host}, this);
  PastryNode& fresh = *e.node;
  nodes_.emplace(id, std::move(e));
  for (auto& [other_id, other] : nodes_) {
    if (other_id == id || !other.alive) continue;
    other.node->learn(fresh.handle());
    fresh.learn(other.node->handle());
  }
  return fresh;
}

PastryNode& PastryNetwork::add_node_join(const U128& id, net::HostId host,
                                         const NodeHandle& bootstrap) {
  if (nodes_.contains(id)) {
    throw std::invalid_argument("PastryNetwork: duplicate id " + id.short_hex());
  }
  Entry e;
  e.node = std::make_unique<PastryNode>(NodeHandle{id, host}, this);
  PastryNode& fresh = *e.node;
  nodes_.emplace(id, std::move(e));
  if (bootstrap.valid()) fresh.begin_join(bootstrap);
  return fresh;
}

void PastryNetwork::kill_node(const U128& id) { entry_of(id).alive = false; }

void PastryNetwork::depart_node(const U128& id) {
  Entry& e = entry_of(id);
  if (!e.alive) throw std::logic_error("depart_node: already dead");
  e.node->announce_departure();
  // Death is atomic with the announcement: the farewells are already on the
  // wire (scheduled above), and from this instant every message addressed to
  // the departed node — including ones that were racing the farewell —
  // bounces to its sender's failure handler.  The old "die one cross-pod
  // latency later" grace period let such racers be delivered to a node that
  // had already said goodbye, so a reply could originate from the dead.
  e.alive = false;
}

bool PastryNetwork::is_alive(const U128& id) const {
  auto it = nodes_.find(id);
  return it != nodes_.end() && it->second.alive;
}

PastryNode* PastryNetwork::find(const U128& id) {
  auto it = nodes_.find(id);
  if (it == nodes_.end() || !it->second.alive) return nullptr;
  return it->second.node.get();
}

const PastryNode* PastryNetwork::find(const U128& id) const {
  auto it = nodes_.find(id);
  if (it == nodes_.end() || !it->second.alive) return nullptr;
  return it->second.node.get();
}

PastryNode& PastryNetwork::at(const U128& id) {
  PastryNode* n = find(id);
  if (n == nullptr) {
    throw std::out_of_range("PastryNetwork: no live node " + id.short_hex());
  }
  return *n;
}

std::vector<PastryNode*> PastryNetwork::nodes() {
  std::vector<PastryNode*> out;
  out.reserve(nodes_.size());
  for (auto& [id, e] : nodes_) {
    if (e.alive) out.push_back(e.node.get());
  }
  return out;
}

std::vector<const PastryNode*> PastryNetwork::nodes() const {
  std::vector<const PastryNode*> out;
  out.reserve(nodes_.size());
  for (const auto& [id, e] : nodes_) {
    if (e.alive) out.push_back(e.node.get());
  }
  return out;
}

std::size_t PastryNetwork::size() const {
  std::size_t n = 0;
  for (const auto& [id, e] : nodes_) n += e.alive ? 1 : 0;
  return n;
}

NodeHandle PastryNetwork::global_closest(const U128& key) const {
  NodeHandle best = kNoHandle;
  for (const auto& [id, e] : nodes_) {
    if (!e.alive) continue;
    if (!best.valid() || closer_on_ring(key, id, best.id)) {
      best = e.node->handle();
    }
  }
  if (!best.valid()) throw std::logic_error("PastryNetwork: empty network");
  return best;
}

sim::FaultDecision PastryNetwork::consult_fault_plan(const NodeHandle& from,
                                                     const NodeHandle& to,
                                                     Entry& sender) {
  if (fault_plan_ == nullptr) return {};
  sim::FaultEndpoints ep;
  ep.src_host = static_cast<int>(from.host);
  ep.dst_host = static_cast<int>(to.host);
  ep.src_rack = topo_->rack_of(from.host);
  ep.dst_rack = topo_->rack_of(to.host);
  ep.src_pod = topo_->pod_of(from.host);
  ep.dst_pod = topo_->pod_of(to.host);
  if (runner_ != nullptr) {
    // Sharded mode: the plan's sequential Rng would be drawn in a
    // thread-dependent order (and raced outright).  Key the verdict by
    // (sender node, per-sender ordinal) instead — order-free, replayable.
    return fault_plan_->decide_keyed(now_for(from.host), ep, from.id.lo(),
                                     sender.fault_seq++);
  }
  return fault_plan_->decide(sim_->now(), ep);
}

void PastryNetwork::send_route(const NodeHandle& from, const NodeHandle& to,
                               RouteMsg msg) {
  Entry& sender = entry_of(from.id);
  // A dead node's pending timers can still fire; their sends go nowhere.
  if (!sender.alive) return;
  sender.counters.add(msg.category,
                      msg.payload ? msg.payload->wire_bytes() : 16);
  sim::Simulator& src_sim = simulator_for(from.host);
  sim::FaultDecision fault = consult_fault_plan(from, to, sender);
  if (fault.drop) {
    sender.counters.fault_dropped_msgs += 1;
    if (trace_ != nullptr) {
      trace_->instant(src_sim.now(), msg.trace_id, static_cast<int>(from.host),
                      fault.partitioned ? "fault.partition_drop" : "fault.drop",
                      "fault", "dst_host", static_cast<double>(to.host));
    }
    return;  // silent loss: no bounce, no failure callback — pure chaos
  }
  double lat = topo_->latency_s(from.host, to.host);
  U128 from_id = from.id;
  NodeHandle to_handle = to;
  // Capture the destination only as its handle (to_handle.id is the map
  // key): a separate U128 copy would push the hop closure past EventFn's
  // inline buffer — see the static_assert below.
  auto deliver = [this, from_id, to_handle](RouteMsg m) mutable {
    wire_dec(to_handle.host);  // this copy is off the wire, whatever happens
    auto it = nodes_.find(to_handle.id);
    if (it == nodes_.end() || !it->second.alive) {
      // Destination dead: surface the failure to the sender after a
      // timeout-like delay (one more latency unit).
      auto sit = nodes_.find(from_id);
      if (sit == nodes_.end() || !sit->second.alive) return;
      PastryNode& snode = *sit->second.node;
      if (runner_ != nullptr &&
          shard_of(snode.handle().host) != vb::current_shard()) {
        // The bounce crosses shards: hand it back on the sender's own shard
        // one link latency later (>= lookahead by the sharding contract).
        wire_inc(snode.handle().host);
        runner_->post(
            shard_of(snode.handle().host),
            simulator_for(to_handle.host).now() +
                topo_->latency_s(to_handle.host, snode.handle().host),
            [this, from_id, to_handle, m = std::move(m)]() mutable {
              auto s2 = nodes_.find(from_id);
              wire_dec(s2->second.node->handle().host);
              if (!s2->second.alive) return;
              s2->second.node->handle_send_failure(to_handle, &m);
            });
        return;
      }
      snode.handle_send_failure(to_handle, &m);
      return;
    }
    it->second.node->handle_route_msg(std::move(m));
  };
  bool cross = runner_ != nullptr && shard_of(from.host) != shard_of(to.host);
  if (fault.duplicate) {
    sender.counters.fault_dup_msgs += 1;
    if (trace_ != nullptr) {
      trace_->instant(src_sim.now(), msg.trace_id, static_cast<int>(from.host),
                      "fault.dup", "fault", "dst_host",
                      static_cast<double>(to.host));
    }
    auto dup = [deliver, m = msg]() mutable { deliver(std::move(m)); };
    wire_inc(to.host);
    if (cross) {
      runner_->post(shard_of(to.host),
                    src_sim.now() + lat + fault.dup_extra_delay_s,
                    std::move(dup));
    } else {
      src_sim.schedule_in(lat + fault.dup_extra_delay_s, std::move(dup));
    }
  }
  auto primary = [deliver, m = std::move(msg)]() mutable {
    deliver(std::move(m));
  };
  // The route hop is the hottest closure in the simulator; if it outgrows
  // the EventFn inline buffer every hop heap-allocates (~15% throughput).
  static_assert(sizeof(primary) <= sim::EventFn::inline_capacity(),
                "route-hop closure must stay inline; grow kDefaultInlineBytes");
  wire_inc(to.host);
  if (cross) {
    runner_->post(shard_of(to.host), src_sim.now() + lat + fault.extra_delay_s,
                  std::move(primary));
  } else {
    src_sim.schedule_in(lat + fault.extra_delay_s, std::move(primary));
  }
}

void PastryNetwork::send_direct(const NodeHandle& from, const NodeHandle& to,
                                PayloadPtr payload, MsgCategory category) {
  Entry& sender = entry_of(from.id);
  if (!sender.alive) return;
  sender.counters.add(category, payload ? payload->wire_bytes() : 16);
  sim::Simulator& src_sim = simulator_for(from.host);
  sim::FaultDecision fault = consult_fault_plan(from, to, sender);
  if (fault.drop) {
    sender.counters.fault_dropped_msgs += 1;
    if (trace_ != nullptr) {
      trace_->instant(src_sim.now(), payload ? payload->trace_id() : 0,
                      static_cast<int>(from.host),
                      fault.partitioned ? "fault.partition_drop" : "fault.drop",
                      "fault", "dst_host", static_cast<double>(to.host));
    }
    return;
  }
  double lat = topo_->latency_s(from.host, to.host);
  std::uint64_t payload_trace =
      (trace_ != nullptr && payload) ? payload->trace_id() : 0;
  U128 from_id = from.id;
  U128 to_id = to.id;
  NodeHandle from_handle = from;
  NodeHandle to_handle = to;
  auto deliver = [this, from_id, to_id, from_handle, to_handle,
                  p = std::move(payload), category]() {
    wire_dec(to_handle.host);  // this copy is off the wire, whatever happens
    auto it = nodes_.find(to_id);
    if (it == nodes_.end() || !it->second.alive) {
      auto sit = nodes_.find(from_id);
      if (sit == nodes_.end() || !sit->second.alive) return;
      PastryNode& snode = *sit->second.node;
      if (runner_ != nullptr &&
          shard_of(snode.handle().host) != vb::current_shard()) {
        wire_inc(snode.handle().host);
        runner_->post(
            shard_of(snode.handle().host),
            simulator_for(to_handle.host).now() +
                topo_->latency_s(to_handle.host, snode.handle().host),
            [this, from_id, to_handle]() {
              auto s2 = nodes_.find(from_id);
              wire_dec(s2->second.node->handle().host);
              if (!s2->second.alive) return;
              s2->second.node->handle_send_failure(to_handle, nullptr);
            });
        return;
      }
      snode.handle_send_failure(to_handle, nullptr);
      return;
    }
    it->second.node->handle_direct_msg(from_handle, p, category);
  };
  bool cross = runner_ != nullptr && shard_of(from.host) != shard_of(to.host);
  if (fault.duplicate) {
    sender.counters.fault_dup_msgs += 1;
    if (trace_ != nullptr) {
      trace_->instant(src_sim.now(), payload_trace, static_cast<int>(from.host),
                      "fault.dup", "fault", "dst_host",
                      static_cast<double>(to.host));
    }
    wire_inc(to.host);
    if (cross) {
      runner_->post(shard_of(to.host),
                    src_sim.now() + lat + fault.dup_extra_delay_s, deliver);
    } else {
      src_sim.schedule_in(lat + fault.dup_extra_delay_s, deliver);
    }
  }
  wire_inc(to.host);
  if (cross) {
    runner_->post(shard_of(to.host), src_sim.now() + lat + fault.extra_delay_s,
                  std::move(deliver));
  } else {
    src_sim.schedule_in(lat + fault.extra_delay_s, std::move(deliver));
  }
}

const TrafficCounters& PastryNetwork::counters(const U128& id) const {
  auto it = nodes_.find(id);
  if (it == nodes_.end()) {
    throw std::out_of_range("PastryNetwork: unknown node " + id.short_hex());
  }
  return it->second.counters;
}

std::vector<std::uint64_t> PastryNetwork::per_node_msgs() const {
  std::vector<std::uint64_t> out;
  for (const auto& [id, e] : nodes_) {
    if (e.alive) out.push_back(e.counters.total_msgs());
  }
  return out;
}

std::vector<std::uint64_t> PastryNetwork::per_node_bytes() const {
  std::vector<std::uint64_t> out;
  for (const auto& [id, e] : nodes_) {
    if (e.alive) out.push_back(e.counters.total_bytes());
  }
  return out;
}

void PastryNetwork::reset_counters() {
  for (auto& [id, e] : nodes_) e.counters.reset();
}

std::uint64_t PastryNetwork::total_msgs() const {
  std::uint64_t t = 0;
  for (const auto& [id, e] : nodes_) t += e.counters.total_msgs();
  return t;
}

std::uint64_t PastryNetwork::total_fault_dropped() const {
  std::uint64_t t = 0;
  for (const auto& [id, e] : nodes_) t += e.counters.fault_dropped_msgs;
  return t;
}

std::uint64_t PastryNetwork::total_fault_dups() const {
  std::uint64_t t = 0;
  for (const auto& [id, e] : nodes_) t += e.counters.fault_dup_msgs;
  return t;
}

void PastryNetwork::export_metrics(obs::MetricsRegistry& reg) const {
  static constexpr MsgCategory kAll[] = {
      MsgCategory::kOverlayMaintenance, MsgCategory::kScribeControl,
      MsgCategory::kAggregation,        MsgCategory::kVBundle,
      MsgCategory::kApp,                MsgCategory::kRetransmit,
      MsgCategory::kAck,
  };
  std::array<std::uint64_t, TrafficCounters::kCategories> msgs{};
  std::array<std::uint64_t, TrafficCounters::kCategories> bytes{};
  std::uint64_t dropped = 0;
  std::uint64_t dups = 0;
  obs::Distribution& per_node = reg.distribution("pastry.msgs.per_node");
  per_node.reset();  // idempotent collection: rebuild, never accumulate
  for (const auto& [id, e] : nodes_) {
    for (std::size_t i = 0; i < msgs.size(); ++i) {
      msgs[i] += e.counters.msgs_sent[i];
      bytes[i] += e.counters.bytes_sent[i];
    }
    dropped += e.counters.fault_dropped_msgs;
    dups += e.counters.fault_dup_msgs;
    if (e.alive) {
      per_node.observe(static_cast<double>(e.counters.total_msgs()));
    }
  }
  std::uint64_t total_m = 0;
  std::uint64_t total_b = 0;
  for (MsgCategory c : kAll) {
    auto i = static_cast<std::size_t>(c);
    std::string base = std::string("pastry.msgs.") + to_string(c);
    reg.counter(base).set(msgs[i]);
    reg.counter(std::string("pastry.bytes.") + to_string(c)).set(bytes[i]);
    total_m += msgs[i];
    total_b += bytes[i];
  }
  reg.counter("pastry.msgs.total").set(total_m);
  reg.counter("pastry.bytes.total").set(total_b);
  reg.counter("fault.dropped_msgs").set(dropped);
  reg.counter("fault.dup_msgs").set(dups);
  reg.gauge("pastry.nodes.alive").set(static_cast<double>(size()));
}

void PastryNetwork::stabilize_all() {
  for (auto& [id, e] : nodes_) {
    if (e.alive) {
      e.node->stabilize();
      e.node->maintain_routing_table();
    }
  }
}

void PastryNetwork::ckpt_save(ckpt::Writer& w) const {
  if (wire_in_flight() != 0) {
    throw ckpt::CkptError(
        "pastry save: " + std::to_string(wire_in_flight()) +
        " transport deliveries still in flight — checkpoints may only be "
        "taken at a quiesce barrier (wire_in_flight() == 0)");
  }
  w.begin_section("pastry");
  w.i64(last_delivery_hops_);
  w.u32(static_cast<std::uint32_t>(nodes_.size()));
  for (const auto& [id, e] : nodes_) {
    w.u128(id);
    w.boolean(e.alive);
    w.u64(e.fault_seq);
    for (std::uint64_t v : e.counters.msgs_sent) w.u64(v);
    for (std::uint64_t v : e.counters.bytes_sent) w.u64(v);
    w.u64(e.counters.fault_dropped_msgs);
    w.u64(e.counters.fault_dup_msgs);
    e.node->ckpt_save(w);
  }
  w.end_section();
}

void PastryNetwork::ckpt_restore(ckpt::Reader& r) {
  r.enter_section("pastry");
  last_delivery_hops_ = static_cast<int>(r.i64());
  if (r.u32() != nodes_.size()) {
    throw ckpt::CkptError(
        "pastry restore: node count differs from the reconstruction");
  }
  for (auto& [id, e] : nodes_) {
    // nodes_ is id-ordered and the save loop walked the same order, so the
    // ids must line up one-to-one.
    if (r.u128() != id) {
      throw ckpt::CkptError("pastry restore: node id mismatch at " +
                            id.short_hex() +
                            " — reconstruction created different nodes");
    }
    bool alive = r.boolean();
    if (alive && !e.alive) {
      throw ckpt::CkptError("pastry restore: node " + id.short_hex() +
                            " is dead in the reconstruction but alive in the "
                            "checkpoint");
    }
    e.alive = alive;  // re-kill nodes that had failed by checkpoint time
    e.fault_seq = r.u64();
    for (std::uint64_t& v : e.counters.msgs_sent) v = r.u64();
    for (std::uint64_t& v : e.counters.bytes_sent) v = r.u64();
    e.counters.fault_dropped_msgs = r.u64();
    e.counters.fault_dup_msgs = r.u64();
    e.node->ckpt_restore(r);
  }
  r.exit_section();
}

}  // namespace vb::pastry
