#include "pastry/pastry_network.h"

#include <stdexcept>

namespace vb::pastry {

std::uint64_t TrafficCounters::total_msgs() const {
  std::uint64_t t = 0;
  for (auto v : msgs_sent) t += v;
  return t;
}

std::uint64_t TrafficCounters::total_bytes() const {
  std::uint64_t t = 0;
  for (auto v : bytes_sent) t += v;
  return t;
}

void TrafficCounters::add(MsgCategory c, std::size_t bytes) {
  auto i = static_cast<std::size_t>(c);
  msgs_sent[i] += 1;
  bytes_sent[i] += bytes;
}

void TrafficCounters::reset() {
  msgs_sent.fill(0);
  bytes_sent.fill(0);
  fault_dropped_msgs = 0;
  fault_dup_msgs = 0;
}

PastryNetwork::PastryNetwork(sim::Simulator* simulator, const net::Topology* topo)
    : sim_(simulator), topo_(topo) {
  if (simulator == nullptr || topo == nullptr) {
    throw std::invalid_argument("PastryNetwork: null simulator/topology");
  }
}

PastryNetwork::Entry& PastryNetwork::entry_of(const U128& id) {
  auto it = nodes_.find(id);
  if (it == nodes_.end()) {
    throw std::out_of_range("PastryNetwork: unknown node " + id.short_hex());
  }
  return it->second;
}

PastryNode& PastryNetwork::add_node_oracle(const U128& id, net::HostId host) {
  if (nodes_.contains(id)) {
    throw std::invalid_argument("PastryNetwork: duplicate id " + id.short_hex());
  }
  Entry e;
  e.node = std::make_unique<PastryNode>(NodeHandle{id, host}, this);
  PastryNode& fresh = *e.node;
  nodes_.emplace(id, std::move(e));
  for (auto& [other_id, other] : nodes_) {
    if (other_id == id || !other.alive) continue;
    other.node->learn(fresh.handle());
    fresh.learn(other.node->handle());
  }
  return fresh;
}

PastryNode& PastryNetwork::add_node_join(const U128& id, net::HostId host,
                                         const NodeHandle& bootstrap) {
  if (nodes_.contains(id)) {
    throw std::invalid_argument("PastryNetwork: duplicate id " + id.short_hex());
  }
  Entry e;
  e.node = std::make_unique<PastryNode>(NodeHandle{id, host}, this);
  PastryNode& fresh = *e.node;
  nodes_.emplace(id, std::move(e));
  if (bootstrap.valid()) fresh.begin_join(bootstrap);
  return fresh;
}

void PastryNetwork::kill_node(const U128& id) { entry_of(id).alive = false; }

void PastryNetwork::depart_node(const U128& id) {
  Entry& e = entry_of(id);
  if (!e.alive) throw std::logic_error("depart_node: already dead");
  e.node->announce_departure();
  // Death is atomic with the announcement: the farewells are already on the
  // wire (scheduled above), and from this instant every message addressed to
  // the departed node — including ones that were racing the farewell —
  // bounces to its sender's failure handler.  The old "die one cross-pod
  // latency later" grace period let such racers be delivered to a node that
  // had already said goodbye, so a reply could originate from the dead.
  e.alive = false;
}

bool PastryNetwork::is_alive(const U128& id) const {
  auto it = nodes_.find(id);
  return it != nodes_.end() && it->second.alive;
}

PastryNode* PastryNetwork::find(const U128& id) {
  auto it = nodes_.find(id);
  if (it == nodes_.end() || !it->second.alive) return nullptr;
  return it->second.node.get();
}

const PastryNode* PastryNetwork::find(const U128& id) const {
  auto it = nodes_.find(id);
  if (it == nodes_.end() || !it->second.alive) return nullptr;
  return it->second.node.get();
}

PastryNode& PastryNetwork::at(const U128& id) {
  PastryNode* n = find(id);
  if (n == nullptr) {
    throw std::out_of_range("PastryNetwork: no live node " + id.short_hex());
  }
  return *n;
}

std::vector<PastryNode*> PastryNetwork::nodes() {
  std::vector<PastryNode*> out;
  out.reserve(nodes_.size());
  for (auto& [id, e] : nodes_) {
    if (e.alive) out.push_back(e.node.get());
  }
  return out;
}

std::vector<const PastryNode*> PastryNetwork::nodes() const {
  std::vector<const PastryNode*> out;
  out.reserve(nodes_.size());
  for (const auto& [id, e] : nodes_) {
    if (e.alive) out.push_back(e.node.get());
  }
  return out;
}

std::size_t PastryNetwork::size() const {
  std::size_t n = 0;
  for (const auto& [id, e] : nodes_) n += e.alive ? 1 : 0;
  return n;
}

NodeHandle PastryNetwork::global_closest(const U128& key) const {
  NodeHandle best = kNoHandle;
  for (const auto& [id, e] : nodes_) {
    if (!e.alive) continue;
    if (!best.valid() || closer_on_ring(key, id, best.id)) {
      best = e.node->handle();
    }
  }
  if (!best.valid()) throw std::logic_error("PastryNetwork: empty network");
  return best;
}

sim::FaultDecision PastryNetwork::consult_fault_plan(const NodeHandle& from,
                                                     const NodeHandle& to) {
  if (fault_plan_ == nullptr) return {};
  sim::FaultEndpoints ep;
  ep.src_host = static_cast<int>(from.host);
  ep.dst_host = static_cast<int>(to.host);
  ep.src_rack = topo_->rack_of(from.host);
  ep.dst_rack = topo_->rack_of(to.host);
  ep.src_pod = topo_->pod_of(from.host);
  ep.dst_pod = topo_->pod_of(to.host);
  return fault_plan_->decide(sim_->now(), ep);
}

void PastryNetwork::send_route(const NodeHandle& from, const NodeHandle& to,
                               RouteMsg msg) {
  Entry& sender = entry_of(from.id);
  // A dead node's pending timers can still fire; their sends go nowhere.
  if (!sender.alive) return;
  sender.counters.add(msg.category,
                      msg.payload ? msg.payload->wire_bytes() : 16);
  sim::FaultDecision fault = consult_fault_plan(from, to);
  if (fault.drop) {
    sender.counters.fault_dropped_msgs += 1;
    return;  // silent loss: no bounce, no failure callback — pure chaos
  }
  double lat = topo_->latency_s(from.host, to.host);
  U128 from_id = from.id;
  U128 to_id = to.id;
  NodeHandle to_handle = to;
  auto deliver = [this, from_id, to_id, to_handle](RouteMsg m) mutable {
    auto it = nodes_.find(to_id);
    if (it == nodes_.end() || !it->second.alive) {
      // Destination dead: surface the failure to the sender after a
      // timeout-like delay (one more latency unit).
      auto sit = nodes_.find(from_id);
      if (sit == nodes_.end() || !sit->second.alive) return;
      sit->second.node->handle_send_failure(to_handle, &m);
      return;
    }
    it->second.node->handle_route_msg(std::move(m));
  };
  if (fault.duplicate) {
    sender.counters.fault_dup_msgs += 1;
    sim_->schedule_in(lat + fault.dup_extra_delay_s,
                      [deliver, m = msg]() mutable { deliver(std::move(m)); });
  }
  sim_->schedule_in(lat + fault.extra_delay_s,
                    [deliver, m = std::move(msg)]() mutable {
                      deliver(std::move(m));
                    });
}

void PastryNetwork::send_direct(const NodeHandle& from, const NodeHandle& to,
                                PayloadPtr payload, MsgCategory category) {
  Entry& sender = entry_of(from.id);
  if (!sender.alive) return;
  sender.counters.add(category, payload ? payload->wire_bytes() : 16);
  sim::FaultDecision fault = consult_fault_plan(from, to);
  if (fault.drop) {
    sender.counters.fault_dropped_msgs += 1;
    return;
  }
  double lat = topo_->latency_s(from.host, to.host);
  U128 from_id = from.id;
  U128 to_id = to.id;
  NodeHandle from_handle = from;
  NodeHandle to_handle = to;
  auto deliver = [this, from_id, to_id, from_handle, to_handle,
                  p = std::move(payload), category]() {
    auto it = nodes_.find(to_id);
    if (it == nodes_.end() || !it->second.alive) {
      auto sit = nodes_.find(from_id);
      if (sit == nodes_.end() || !sit->second.alive) return;
      sit->second.node->handle_send_failure(to_handle, nullptr);
      return;
    }
    it->second.node->handle_direct_msg(from_handle, p, category);
  };
  if (fault.duplicate) {
    sender.counters.fault_dup_msgs += 1;
    sim_->schedule_in(lat + fault.dup_extra_delay_s, deliver);
  }
  sim_->schedule_in(lat + fault.extra_delay_s, std::move(deliver));
}

const TrafficCounters& PastryNetwork::counters(const U128& id) const {
  auto it = nodes_.find(id);
  if (it == nodes_.end()) {
    throw std::out_of_range("PastryNetwork: unknown node " + id.short_hex());
  }
  return it->second.counters;
}

std::vector<std::uint64_t> PastryNetwork::per_node_msgs() const {
  std::vector<std::uint64_t> out;
  for (const auto& [id, e] : nodes_) {
    if (e.alive) out.push_back(e.counters.total_msgs());
  }
  return out;
}

std::vector<std::uint64_t> PastryNetwork::per_node_bytes() const {
  std::vector<std::uint64_t> out;
  for (const auto& [id, e] : nodes_) {
    if (e.alive) out.push_back(e.counters.total_bytes());
  }
  return out;
}

void PastryNetwork::reset_counters() {
  for (auto& [id, e] : nodes_) e.counters.reset();
}

std::uint64_t PastryNetwork::total_msgs() const {
  std::uint64_t t = 0;
  for (const auto& [id, e] : nodes_) t += e.counters.total_msgs();
  return t;
}

std::uint64_t PastryNetwork::total_fault_dropped() const {
  std::uint64_t t = 0;
  for (const auto& [id, e] : nodes_) t += e.counters.fault_dropped_msgs;
  return t;
}

std::uint64_t PastryNetwork::total_fault_dups() const {
  std::uint64_t t = 0;
  for (const auto& [id, e] : nodes_) t += e.counters.fault_dup_msgs;
  return t;
}

void PastryNetwork::stabilize_all() {
  for (auto& [id, e] : nodes_) {
    if (e.alive) {
      e.node->stabilize();
      e.node->maintain_routing_table();
    }
  }
}

}  // namespace vb::pastry
