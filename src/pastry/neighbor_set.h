// Pastry neighbor set: the |M| nodes closest to the owner under the
// *physical* proximity metric (not the id space).
//
// v-Bundle's placement algorithm leans on this set: when the server owning a
// customer's key cannot host a new VM, "the query will be forwarded to its
// neighbor set of servers ... closest according to the proximity metric"
// (§II.B).  Within one proximity tier, nearer host indices are preferred so
// spillover stays rack-local as long as possible.
//
// A pure nearest-M set degenerates in big racks: all M slots fill with
// same-rack peers and a spillover search can never leave a full rack.  Real
// proximity neighbor sets straddle tiers, so we reserve a small quota of
// slots for nodes beyond the owner's rack (nearest such nodes first); the
// rest hold the nearest rack-local peers.
#pragma once

#include <vector>

#include "ckpt/format.h"
#include "net/topology.h"
#include "pastry/node_id.h"

namespace vb::pastry {

class NeighborSet {
 public:
  /// `capacity` = |M| total slots; `remote_quota` of them are reserved for
  /// nodes outside the owner's rack (clamped to capacity/2, min 1).
  NeighborSet(net::HostId owner_host, int capacity = 16, int remote_quota = 4);

  /// Considers a candidate; kept if among the nearest of its slot class
  /// under the (rank, id) total order — equal-rank ties go to the smaller
  /// id, so a converged side is independent of consideration order.
  /// Returns true if the set changed.
  bool consider(const NodeHandle& candidate, const net::Topology& topo);

  bool remove(const NodeHandle& node);

  /// Members ordered nearest-first across both slot classes.
  std::vector<NodeHandle> members() const;

  /// Visits all members (local slots then remote slots) without
  /// materializing a vector.  Visit order differs from members(); use only
  /// where the caller's result is order-independent (e.g. best-candidate
  /// scans with a total tie-break).
  template <class Fn>
  void for_each(Fn&& fn) const {
    for (const NodeHandle& n : local_) fn(n);
    for (const NodeHandle& n : remote_) fn(n);
  }

  bool contains(const NodeHandle& n) const;
  std::size_t size() const { return local_.size() + remote_.size(); }
  /// Slot quotas (the bulk-join synthesizer sizes its candidate sweeps off
  /// these; see bulk_bootstrap.cc).
  std::size_t local_capacity() const { return local_cap_; }
  std::size_t remote_capacity() const { return remote_cap_; }

  // --- checkpoint/restore (src/ckpt) -------------------------------------
  void ckpt_save(ckpt::Writer& w) const {
    auto put_side = [&w](const std::vector<NodeHandle>& side) {
      w.u32(static_cast<std::uint32_t>(side.size()));
      for (const NodeHandle& n : side) {
        w.u128(n.id);
        w.i64(n.host);
      }
    };
    w.u64(local_cap_);
    w.u64(remote_cap_);
    put_side(local_);
    put_side(remote_);
  }
  void ckpt_restore(ckpt::Reader& r) {
    if (r.u64() != local_cap_ || r.u64() != remote_cap_) {
      throw ckpt::CkptError("neighbor set: slot-quota mismatch");
    }
    auto get_side = [&r](std::vector<NodeHandle>& side, std::size_t cap) {
      std::uint32_t n = r.u32();
      if (n > cap) {
        throw ckpt::CkptError("neighbor set: side exceeds its slot quota");
      }
      side.clear();
      side.reserve(n);
      for (std::uint32_t i = 0; i < n; ++i) {
        NodeHandle h;
        h.id = r.u128();
        h.host = static_cast<net::HostId>(r.i64());
        side.push_back(h);
      }
    };
    get_side(local_, local_cap_);
    get_side(remote_, remote_cap_);
  }

 private:
  /// Sort key: (proximity tier, |host index delta|) — deterministic and
  /// topology-faithful.
  long rank(const NodeHandle& n, const net::Topology& topo) const;
  bool insert_ranked(std::vector<NodeHandle>& side, std::size_t cap,
                     const NodeHandle& candidate, const net::Topology& topo);

  net::HostId owner_host_;
  std::size_t local_cap_;
  std::size_t remote_cap_;
  std::vector<NodeHandle> local_;   // same rack (or same host), nearest first
  std::vector<NodeHandle> remote_;  // beyond the rack, nearest first
};

}  // namespace vb::pastry
