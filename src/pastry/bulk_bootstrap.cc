// Implementation of PastryNetwork::bootstrap_bulk (declared in
// pastry_network.h, documented in bulk_bootstrap.h).
//
// Every phase feeds candidates through PastryNode::learn(), the same entry
// point the oracle and the join protocol use.  learn() is a running minimum
// under each component's total order, so correctness only requires
// *coverage*: each node must be offered every canonical winner at least
// once.  Extra candidates (phase overlap, brute-forced small runs) are
// harmlessly absorbed — the minimum is unchanged — which keeps the
// synthesized state bit-identical to an oracle bootstrap of the same fleet.
#include "pastry/bulk_bootstrap.h"

#include <algorithm>
#include <array>
#include <stdexcept>
#include <string>
#include <unordered_map>

#include "net/topology.h"

namespace vb::pastry {
namespace {

// Below this run length the digit-trie recursion switches to all-pairs
// learn(): the summary maps cost more than they save on tiny runs, and
// all-pairs trivially covers every row >= depth winner.
constexpr int kBruteCutoff = 48;

void brute_learn(const std::vector<PastryNode*>& ring, int lo, int hi) {
  for (int i = lo; i < hi; ++i) {
    for (int j = lo; j < hi; ++j) {
      if (i != j) ring[i]->learn(ring[j]->handle());
    }
  }
}

// Fills every routing-table cell (row >= depth) for the nodes in
// ring[lo, hi), which all share `depth` leading id digits.  Sorted ids make
// each child digit a contiguous run, and within a run the front node is the
// minimum id — so the per-child summaries only need host/rack/pod -> first
// occurrence to answer "minimum (proximity, id) candidate for node X" in
// O(1): the tiers partition the run (a populated nearer tier map always
// contains the tier's true minimum), and a missing nearer tier means no such
// candidate exists at all.
void fill_routing(const std::vector<PastryNode*>& ring,
                  const net::Topology& topo, int lo, int hi, int depth) {
  const int n = hi - lo;
  if (n <= 1) return;
  if (n <= kBruteCutoff || depth >= kIdDigits) {
    brute_learn(ring, lo, hi);
    return;
  }

  std::array<int, kIdBase + 1> start{};
  int i = lo;
  for (int c = 0; c < kIdBase; ++c) {
    start[static_cast<std::size_t>(c)] = i;
    while (i < hi && ring[static_cast<std::size_t>(i)]->handle().id.digit(depth) == c) ++i;
  }
  start[kIdBase] = hi;

  struct Summary {
    std::unordered_map<int, int> host_min;  // host  -> min-id node index
    std::unordered_map<int, int> rack_min;  // rack  -> min-id node index
    std::unordered_map<int, int> pod_min;   // pod   -> min-id node index
  };
  std::array<Summary, kIdBase> sum;
  for (int c = 0; c < kIdBase; ++c) {
    for (int k = start[static_cast<std::size_t>(c)];
         k < start[static_cast<std::size_t>(c) + 1]; ++k) {
      net::HostId h = ring[static_cast<std::size_t>(k)]->handle().host;
      auto& s = sum[static_cast<std::size_t>(c)];
      s.host_min.emplace(static_cast<int>(h), k);  // emplace keeps the first
      s.rack_min.emplace(topo.rack_of(h), k);      // = min id (sorted run)
      s.pod_min.emplace(topo.pod_of(h), k);
    }
  }

  for (int c = 0; c < kIdBase; ++c) {
    for (int k = start[static_cast<std::size_t>(c)];
         k < start[static_cast<std::size_t>(c) + 1]; ++k) {
      PastryNode* x = ring[static_cast<std::size_t>(k)];
      const net::HostId xh = x->handle().host;
      const int xr = topo.rack_of(xh);
      const int xp = topo.pod_of(xh);
      for (int c2 = 0; c2 < kIdBase; ++c2) {
        if (c2 == c) continue;
        const auto lo2 = start[static_cast<std::size_t>(c2)];
        if (lo2 == start[static_cast<std::size_t>(c2) + 1]) continue;
        const Summary& s = sum[static_cast<std::size_t>(c2)];
        int w;
        if (auto it = s.host_min.find(static_cast<int>(xh));
            it != s.host_min.end()) {
          w = it->second;
        } else if (auto it2 = s.rack_min.find(xr); it2 != s.rack_min.end()) {
          w = it2->second;
        } else if (auto it3 = s.pod_min.find(xp); it3 != s.pod_min.end()) {
          w = it3->second;
        } else {
          w = lo2;  // cross-pod for X: min id is the run's front
        }
        x->learn(ring[static_cast<std::size_t>(w)]->handle());
      }
    }
  }

  for (int c = 0; c < kIdBase; ++c) {
    fill_routing(ring, topo, start[static_cast<std::size_t>(c)],
                 start[static_cast<std::size_t>(c) + 1], depth + 1);
  }
}

// Leaf sets: node i's canonical leaves are its `half` successors and `half`
// predecessors in sorted ring order (ring distances to anything farther are
// strictly larger, so nothing else can enter a full side).
void fill_leaves(const std::vector<PastryNode*>& ring) {
  const int n = static_cast<int>(ring.size());
  for (int i = 0; i < n; ++i) {
    PastryNode* x = ring[static_cast<std::size_t>(i)];
    const int span = std::min(static_cast<int>(x->leaf_set().half()), n - 1);
    for (int k = 1; k <= span; ++k) {
      x->learn(ring[static_cast<std::size_t>((i + k) % n)]->handle());
      x->learn(ring[static_cast<std::size_t>((i - k + n) % n)]->handle());
    }
  }
}

// Neighbor sets: the local side sees every node hosted in the owner's rack;
// the remote side walks occupied hosts outward from the owner's host (both
// directions, same-rack hosts skipped) until a whole |delta| tier has been
// offered and the quota is met — any host farther out keys strictly larger
// than the quota-th kept entry and can never displace it.
void fill_neighbors(const std::vector<PastryNode*>& ring,
                    const net::Topology& topo) {
  std::vector<std::vector<int>> by_host(
      static_cast<std::size_t>(topo.num_hosts()));
  for (int i = 0; i < static_cast<int>(ring.size()); ++i) {
    by_host[static_cast<std::size_t>(ring[static_cast<std::size_t>(i)]->handle().host)]
        .push_back(i);
  }
  std::vector<net::HostId> occ;
  for (net::HostId h = 0; h < topo.num_hosts(); ++h) {
    if (!by_host[static_cast<std::size_t>(h)].empty()) occ.push_back(h);
  }
  const int hpr = topo.config().hosts_per_rack;

  for (int i = 0; i < static_cast<int>(ring.size()); ++i) {
    PastryNode* x = ring[static_cast<std::size_t>(i)];
    const net::HostId xh = x->handle().host;
    const int xr = topo.rack_of(xh);

    const net::HostId rack_lo = topo.rack_first_host(xr);
    for (net::HostId h = rack_lo; h < rack_lo + hpr; ++h) {
      for (int j : by_host[static_cast<std::size_t>(h)]) {
        if (j != i) x->learn(ring[static_cast<std::size_t>(j)]->handle());
      }
    }

    const std::size_t want = x->neighbor_set().remote_capacity();
    auto it = std::lower_bound(occ.begin(), occ.end(), xh);
    int li = static_cast<int>(it - occ.begin()) - 1;
    int ri = static_cast<int>(it - occ.begin()) + 1;
    std::size_t fed = 0;
    const auto feed_host = [&](net::HostId h) {
      if (topo.rack_of(h) == xr) return;  // local class, handled above
      for (int j : by_host[static_cast<std::size_t>(h)]) {
        x->learn(ring[static_cast<std::size_t>(j)]->handle());
        ++fed;
      }
    };
    while (li >= 0 || ri < static_cast<int>(occ.size())) {
      const long dl =
          li >= 0 ? static_cast<long>(xh) - occ[static_cast<std::size_t>(li)]
                  : -1;
      const long dr = ri < static_cast<int>(occ.size())
                          ? static_cast<long>(occ[static_cast<std::size_t>(ri)]) - xh
                          : -1;
      const long d = (dl < 0)   ? dr
                     : (dr < 0) ? dl
                                : std::min(dl, dr);
      // Offer the whole |delta| tier (both sides) before testing the quota:
      // equal deltas tie-break by id, so a tier must never be half-fed.
      if (dl == d) feed_host(occ[static_cast<std::size_t>(li--)]);
      if (dr == d) feed_host(occ[static_cast<std::size_t>(ri++)]);
      if (fed >= want) break;
    }
  }
}

}  // namespace

std::vector<BulkFleetEntry> fleet_one_per_host(const std::vector<U128>& ids) {
  std::vector<BulkFleetEntry> fleet;
  fleet.reserve(ids.size());
  for (std::size_t h = 0; h < ids.size(); ++h) {
    fleet.push_back({ids[h], static_cast<net::HostId>(h)});
  }
  return fleet;
}

void PastryNetwork::bootstrap_bulk(std::vector<BulkFleetEntry> fleet) {
  if (!nodes_.empty()) {
    throw std::logic_error("bootstrap_bulk: network must be empty");
  }
  if (runner_ != nullptr) {
    throw std::logic_error("bootstrap_bulk: call before enable_sharding");
  }
  std::sort(fleet.begin(), fleet.end(),
            [](const BulkFleetEntry& a, const BulkFleetEntry& b) {
              return a.id < b.id;
            });
  for (std::size_t i = 0; i < fleet.size(); ++i) {
    if (fleet[i].host < 0 || fleet[i].host >= topo_->num_hosts()) {
      throw std::invalid_argument("bootstrap_bulk: host out of range for id " +
                                  fleet[i].id.short_hex());
    }
    if (i > 0 && fleet[i].id == fleet[i - 1].id) {
      throw std::invalid_argument("bootstrap_bulk: duplicate id " +
                                  fleet[i].id.short_hex());
    }
  }

  std::vector<PastryNode*> ring;
  ring.reserve(fleet.size());
  for (const BulkFleetEntry& f : fleet) {
    Entry e;
    e.node = std::make_unique<PastryNode>(NodeHandle{f.id, f.host}, this);
    ring.push_back(e.node.get());
    nodes_.emplace(f.id, std::move(e));
  }

  fill_leaves(ring);
  fill_routing(ring, *topo_, 0, static_cast<int>(ring.size()), 0);
  fill_neighbors(ring, *topo_);
}

}  // namespace vb::pastry
