// Pastry leaf set: the L/2 numerically closest nodes on each side of the
// owner's id on the ring.
//
// The leaf set completes the last routing step ("route to the numerically
// closest node") and is the first line of failure repair (§II.A.2).  It is
// also what makes v-Bundle's key-based placement land on a well-defined
// server: the owner of a key is the node whose id is numerically closest.
#pragma once

#include <optional>
#include <vector>

#include "ckpt/format.h"
#include "common/u128.h"
#include "pastry/node_id.h"

namespace vb::pastry {

class LeafSet {
 public:
  /// `half` = L/2, the number of neighbors kept on each side (default 8,
  /// i.e. |L| = 16, the classic Pastry configuration).
  explicit LeafSet(const U128& owner, int half = 8);

  /// Inserts `candidate` if it belongs among the closest `half` nodes on its
  /// side.  Returns true if the set changed.
  bool consider(const NodeHandle& candidate);

  /// Removes a failed node.  Returns true if found.
  bool remove(const NodeHandle& node);

  /// True if `key` falls within [leftmost leaf, rightmost leaf] (ring
  /// interval around the owner), meaning the leaf set can answer the final
  /// routing step authoritatively.  Also true when the set is not yet full
  /// (a small ring is fully covered by the leaf set).
  bool covers(const U128& key) const;

  /// The member (or the owner itself) numerically closest to `key`.
  /// `owner_handle` supplies the owner's handle so it can be returned.
  NodeHandle closest(const U128& key, const NodeHandle& owner_handle) const;

  /// All current members, clockwise side then counter-clockwise side.
  std::vector<NodeHandle> members() const;

  /// Visits all members (clockwise side then counter-clockwise side)
  /// without materializing a vector — the routing fast path iterates leaves
  /// on every hop and must not allocate.
  template <class Fn>
  void for_each(Fn&& fn) const {
    for (const NodeHandle& n : cw_) fn(n);
    for (const NodeHandle& n : ccw_) fn(n);
  }

  /// Extreme members (farthest on each side); used by join/repair to extend
  /// coverage.  May be invalid handles when the set is empty.
  NodeHandle farthest_cw() const;
  NodeHandle farthest_ccw() const;

  bool contains(const NodeHandle& n) const;
  std::size_t size() const { return cw_.size() + ccw_.size(); }
  int half() const { return half_; }
  const U128& owner() const { return owner_; }

  // --- checkpoint/restore (src/ckpt) -------------------------------------
  void ckpt_save(ckpt::Writer& w) const {
    auto put_side = [&w](const std::vector<NodeHandle>& side) {
      w.u32(static_cast<std::uint32_t>(side.size()));
      for (const NodeHandle& n : side) {
        w.u128(n.id);
        w.i64(n.host);
      }
    };
    w.i64(half_);
    put_side(cw_);
    put_side(ccw_);
  }
  void ckpt_restore(ckpt::Reader& r) {
    if (static_cast<int>(r.i64()) != half_) {
      throw ckpt::CkptError("leaf set: half-width mismatch");
    }
    auto get_side = [&r, this](std::vector<NodeHandle>& side) {
      std::uint32_t n = r.u32();
      if (n > static_cast<std::uint32_t>(half_)) {
        throw ckpt::CkptError("leaf set: side larger than half-width");
      }
      side.clear();
      side.reserve(n);
      for (std::uint32_t i = 0; i < n; ++i) {
        NodeHandle h;
        h.id = r.u128();
        h.host = static_cast<net::HostId>(r.i64());
        side.push_back(h);
      }
    };
    get_side(cw_);
    get_side(ccw_);
  }

 private:
  // cw_ holds nodes at increasing clockwise distance (id - owner mod 2^128);
  // ccw_ at increasing counter-clockwise distance.  Both sorted by distance.
  U128 owner_;
  int half_;
  std::vector<NodeHandle> cw_;
  std::vector<NodeHandle> ccw_;
};

}  // namespace vb::pastry
