// Message envelope types exchanged between Pastry nodes.
//
// Two delivery modes exist, matching the Pastry common API:
//   * key-routed messages ("route to the node numerically closest to key"),
//   * direct messages to a known NodeHandle (tree parent/child traffic,
//     query replies, state exchange).
//
// Applications (Scribe, aggregation, v-Bundle) attach their own payloads by
// deriving from Payload; the overlay never inspects payload contents.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "common/u128.h"
#include "pastry/node_id.h"

namespace vb::pastry {

/// Accounting category, used to break per-host message overhead into
/// "aggregation framework" vs "v-Bundle on top" (paper Fig. 15) plus overlay
/// maintenance.
enum class MsgCategory {
  kOverlayMaintenance,  // join/leaf-set/routing-table upkeep
  kScribeControl,       // group JOIN/LEAVE/heartbeat
  kAggregation,         // aggregation tree updates & publishes
  kVBundle,             // placement queries, load-balance anycast, acks
  kApp,                 // everything else (examples/tests)
  kRetransmit,          // reliable-delivery retransmissions (loss recovery)
  kAck,                 // reliable-delivery acknowledgements
};

inline const char* to_string(MsgCategory c) {
  switch (c) {
    case MsgCategory::kOverlayMaintenance: return "overlay";
    case MsgCategory::kScribeControl: return "scribe";
    case MsgCategory::kAggregation: return "aggregation";
    case MsgCategory::kVBundle: return "vbundle";
    case MsgCategory::kRetransmit: return "retransmit";
    case MsgCategory::kAck: return "ack";
    default: return "app";
  }
}

/// Base class for application payloads.  Payloads are immutable once sent;
/// the shared_ptr lets a multicast fan-out reference one copy.
struct Payload {
  virtual ~Payload() = default;
  /// Approximate wire size in bytes, for KB/round accounting (Fig. 15).
  virtual std::size_t wire_bytes() const { return 64; }
  /// Debug name of the payload type.
  virtual std::string name() const { return "payload"; }
  /// Causal trace id for the obs::TraceRecorder, 0 = untraced.  Payloads
  /// that start or continue a traced chain override this.  Trace ids are
  /// observability metadata: they never count toward wire_bytes().
  virtual std::uint64_t trace_id() const { return 0; }
};

using PayloadPtr = std::shared_ptr<const Payload>;

/// A key-routed message in flight.
struct RouteMsg {
  U128 key;                 ///< destination key on the ring
  PayloadPtr payload;
  NodeHandle source;        ///< originating node
  MsgCategory category = MsgCategory::kApp;
  int hops = 0;             ///< hops taken so far
  std::uint64_t trace_id = 0;  ///< span covering every hop of this route
};

}  // namespace vb::pastry
