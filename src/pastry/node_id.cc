#include "pastry/node_id.h"

namespace vb::pastry {

std::string NodeHandle::to_string() const {
  if (!valid()) return "<none>";
  return id.short_hex(8) + "@h" + std::to_string(host);
}

}  // namespace vb::pastry
