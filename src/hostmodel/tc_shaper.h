// Linux-TC-like bandwidth shaper (§III.D implementation highlights).
//
// "v-Bundle uses control groups combined with Linux traffic shaping (TC) to
// control the volume of traffic being sent ... v-Bundle uses TC to set rate
// and ceil.  Rate means the guaranteed bandwidth available for a given VM
// and ceil ... indicates the maximum bandwidth that VM is allowed to
// consume."
//
// The shaper implements HTB borrow semantics at flow level:
//  1. every class first receives min(demand, rate) — the guarantee;
//  2. leftover NIC capacity is split max-min-fairly among classes whose
//     demand exceeds their guarantee, capped at each class's ceil.
#pragma once

#include <vector>

namespace vb::host {

/// One shaped class (a VM's outbound traffic).
struct ShaperClass {
  double rate_mbps = 0.0;    ///< guaranteed bandwidth
  double ceil_mbps = 0.0;    ///< maximum allowed bandwidth
  double demand_mbps = 0.0;  ///< current offered load
};

/// Allocates `nic_capacity_mbps` across the classes per HTB semantics.
/// Returns per-class allocation aligned with the input.
///
/// Precondition: ceil >= rate >= 0, demand >= 0 for every class.  The sum of
/// rates may exceed capacity (an overbooked host); in that case guarantees
/// are scaled proportionally — this mirrors what happens when an operator
/// violates admission control, and is exercised in tests.
std::vector<double> shape(double nic_capacity_mbps,
                          const std::vector<ShaperClass>& classes);

}  // namespace vb::host
