#include "hostmodel/host.h"

#include <algorithm>
#include <stdexcept>

namespace vb::host {

Fleet::Fleet(int num_hosts, double nic_capacity_mbps, double cpu_capacity,
             double mem_capacity_mb) {
  if (num_hosts <= 0 || nic_capacity_mbps <= 0 || cpu_capacity <= 0 ||
      mem_capacity_mb <= 0) {
    throw std::invalid_argument("Fleet: invalid dimensions");
  }
  hosts_.reserve(static_cast<std::size_t>(num_hosts));
  for (int h = 0; h < num_hosts; ++h) {
    hosts_.emplace_back(h, nic_capacity_mbps, cpu_capacity, mem_capacity_mb);
  }
}

VmId Fleet::create_vm(CustomerId customer, const VmSpec& spec) {
  if (!spec.valid()) throw std::invalid_argument("Fleet: invalid VmSpec");
  Vm v;
  v.id = static_cast<VmId>(vms_.size());
  v.customer = customer;
  v.spec = spec;
  vms_.push_back(v);
  return v.id;
}

bool Fleet::place(VmId id, int h) {
  Vm& v = vm(id);
  if (v.host != -1) throw std::logic_error("Fleet::place: VM already placed");
  Host& dst = host(h);
  if (!dst.can_admit(v.spec)) return false;
  dst.vms_.push_back(id);
  dst.reserved_mbps_ += v.spec.reservation_mbps;
  dst.reserved_cpu_ += v.spec.cpu_reservation;
  dst.reserved_mem_mb_ += v.spec.ram_mb;
  v.host = h;
  return true;
}

void Fleet::unplace(VmId id) {
  Vm& v = vm(id);
  if (v.host == -1) throw std::logic_error("Fleet::unplace: VM not placed");
  Host& src = host(v.host);
  auto it = std::find(src.vms_.begin(), src.vms_.end(), id);
  if (it == src.vms_.end()) {
    throw std::logic_error("Fleet::unplace: host/vm bookkeeping mismatch");
  }
  src.vms_.erase(it);
  src.reserved_mbps_ -= v.spec.reservation_mbps;
  src.reserved_cpu_ -= v.spec.cpu_reservation;
  src.reserved_mem_mb_ -= v.spec.ram_mb;
  v.host = -1;
}

void Fleet::migrate(VmId id, int dst, bool consume_hold) {
  Vm& v = vm(id);
  unplace(id);
  Host& d = host(dst);
  if (consume_hold) {
    // The receiver held the reservations when accepting the anycast query;
    // placing the VM converts the hold into real reservations.
    d.release_hold_all(v.spec);
  }
  d.vms_.push_back(id);
  d.reserved_mbps_ += v.spec.reservation_mbps;
  d.reserved_cpu_ += v.spec.cpu_reservation;
  d.reserved_mem_mb_ += v.spec.ram_mb;
  v.host = dst;
  v.migrating = false;
}

void Fleet::destroy_vm(VmId id) {
  Vm& v = vm(id);
  if (v.destroyed) throw std::logic_error("Fleet::destroy_vm: already gone");
  if (v.migrating) {
    throw std::logic_error("Fleet::destroy_vm: migration in flight");
  }
  if (v.host != -1) unplace(id);
  v.destroyed = true;
  v.demand_mbps = 0.0;
  v.cpu_demand = 0.0;
}

void Fleet::set_demand(VmId id, double mbps) {
  if (mbps < 0) throw std::invalid_argument("Fleet::set_demand: negative");
  vm(id).demand_mbps = mbps;
}

void Fleet::set_cpu_demand(VmId id, double units) {
  if (units < 0) throw std::invalid_argument("Fleet::set_cpu_demand: negative");
  vm(id).cpu_demand = units;
}

double Fleet::host_demand_mbps(int h) const {
  double total = 0.0;
  for (VmId id : host(h).vms()) total += vm(id).capped_demand();
  return total;
}

double Fleet::host_utilization(int h) const {
  return host_demand_mbps(h) / host(h).capacity_mbps();
}

double Fleet::host_cpu_demand(int h) const {
  double total = 0.0;
  for (VmId id : host(h).vms()) total += vm(id).capped_cpu_demand();
  return total;
}

double Fleet::host_cpu_utilization(int h) const {
  return host_cpu_demand(h) / host(h).cpu_capacity();
}

double Fleet::host_mem_utilization(int h) const {
  double total = 0.0;
  for (VmId id : host(h).vms()) total += vm(id).spec.ram_mb;
  return total / host(h).mem_capacity_mb();
}

std::vector<std::pair<VmId, double>> Fleet::shape_host(int h) const {
  const Host& hh = host(h);
  std::vector<ShaperClass> classes;
  classes.reserve(hh.vms().size());
  for (VmId id : hh.vms()) {
    const Vm& v = vm(id);
    classes.push_back(ShaperClass{v.spec.reservation_mbps, v.spec.limit_mbps,
                                  v.demand_mbps});
  }
  std::vector<double> alloc = shape(hh.capacity_mbps(), classes);
  std::vector<std::pair<VmId, double>> out;
  out.reserve(alloc.size());
  for (std::size_t i = 0; i < alloc.size(); ++i) {
    out.emplace_back(hh.vms()[i], alloc[i]);
  }
  return out;
}

double Fleet::total_satisfied_mbps() const {
  double total = 0.0;
  for (const Host& h : hosts_) {
    for (const auto& [id, mbps] : shape_host(h.id())) total += mbps;
  }
  return total;
}

double Fleet::total_demand_mbps() const {
  double total = 0.0;
  for (const Vm& v : vms_) {
    if (v.host != -1) total += v.capped_demand();
  }
  return total;
}

std::vector<double> Fleet::utilization_snapshot() const {
  std::vector<double> out;
  out.reserve(hosts_.size());
  for (const Host& h : hosts_) out.push_back(host_utilization(h.id()));
  return out;
}

std::vector<double> Fleet::free_reservation_snapshot() const {
  std::vector<double> out;
  out.reserve(hosts_.size());
  for (const Host& h : hosts_) out.push_back(h.free_reservation_mbps());
  return out;
}

void Fleet::ckpt_save(ckpt::Writer& w) const {
  w.begin_section("fleet");
  w.u32(static_cast<std::uint32_t>(hosts_.size()));
  for (const Host& h : hosts_) {
    w.f64(h.capacity_mbps_);
    w.f64(h.cpu_capacity_);
    w.f64(h.mem_capacity_mb_);
    w.f64(h.reserved_mbps_);
    w.f64(h.reserved_cpu_);
    w.f64(h.reserved_mem_mb_);
    w.u32(static_cast<std::uint32_t>(h.vms_.size()));
    for (VmId id : h.vms_) w.i64(id);
  }
  w.u32(static_cast<std::uint32_t>(vms_.size()));
  for (const Vm& v : vms_) {
    w.i64(v.customer);
    w.f64(v.spec.reservation_mbps);
    w.f64(v.spec.limit_mbps);
    w.f64(v.spec.ram_mb);
    w.f64(v.spec.cpu_reservation);
    w.f64(v.spec.cpu_limit);
    w.i64(v.host);
    w.f64(v.demand_mbps);
    w.f64(v.cpu_demand);
    w.boolean(v.migrating);
    w.boolean(v.destroyed);
  }
  w.end_section();
}

void Fleet::ckpt_restore(ckpt::Reader& r) {
  r.enter_section("fleet");
  std::uint32_t nh = r.u32();
  if (nh != hosts_.size()) {
    throw ckpt::CkptError("fleet: host count mismatch (checkpoint " +
                          std::to_string(nh) + ", reconstruction " +
                          std::to_string(hosts_.size()) + ")");
  }
  for (Host& h : hosts_) {
    double cap = r.f64();
    double cpu = r.f64();
    double mem = r.f64();
    if (cap != h.capacity_mbps_ || cpu != h.cpu_capacity_ ||
        mem != h.mem_capacity_mb_) {
      throw ckpt::CkptError("fleet: host " + std::to_string(h.id_) +
                            " capacity mismatch");
    }
    h.reserved_mbps_ = r.f64();
    h.reserved_cpu_ = r.f64();
    h.reserved_mem_mb_ = r.f64();
    h.vms_.clear();
    std::uint32_t nv = r.u32();
    h.vms_.reserve(nv);
    for (std::uint32_t i = 0; i < nv; ++i) {
      h.vms_.push_back(static_cast<VmId>(r.i64()));
    }
  }
  // VMs may have been booted after setup, so the table is rebuilt wholesale
  // rather than verified against the reconstruction.
  std::uint32_t nv = r.u32();
  vms_.clear();
  vms_.reserve(nv);
  for (std::uint32_t i = 0; i < nv; ++i) {
    Vm v;
    v.id = static_cast<VmId>(i);
    v.customer = static_cast<CustomerId>(r.i64());
    v.spec.reservation_mbps = r.f64();
    v.spec.limit_mbps = r.f64();
    v.spec.ram_mb = r.f64();
    v.spec.cpu_reservation = r.f64();
    v.spec.cpu_limit = r.f64();
    v.host = static_cast<int>(r.i64());
    v.demand_mbps = r.f64();
    v.cpu_demand = r.f64();
    v.migrating = r.boolean();
    v.destroyed = r.boolean();
    vms_.push_back(v);
  }
  r.exit_section();
}

}  // namespace vb::host
