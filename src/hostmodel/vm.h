// Virtual machine model with v-Bundle's (reservation, limit) attributes.
//
// Unlike Amazon EC2's fixed-size tuple, v-Bundle VMs "specify reservations
// and limits for CPU, memory, or bandwidth resources" (§III.B):
//  * reservation — minimal guaranteed amount; the VM may only power on if it
//    can be guaranteed even on an overloaded server;
//  * limit — hard upper bound regardless of spare capacity.
// This repository focuses on the network-bandwidth resource, as the paper
// does, but carries CPU/memory fields so the future-work multi-metric
// extension has somewhere to live.
#pragma once

#include <cstdint>
#include <string>

namespace vb::host {

using VmId = int;
using CustomerId = int;

/// Static attributes fixed at purchase time.
///
/// Bandwidth is the paper's primary resource; CPU and memory implement the
/// §VII future-work extension ("considering multiple metrics like CPU,
/// memory, and bandwidth").  CPU gets its own (reservation, limit) pair and
/// participates in shuffling when enabled; memory is a static footprint
/// (the VM's RAM) honored by admission control.
struct VmSpec {
  double reservation_mbps = 0.0;  ///< guaranteed bandwidth (TC "rate")
  double limit_mbps = 0.0;        ///< bandwidth ceiling (TC "ceil")
  double ram_mb = 128.0;          ///< paper's testbed VMs use 128 MB
  double cpu_reservation = 0.0;   ///< guaranteed compute units
  double cpu_limit = 0.0;         ///< compute-unit ceiling

  bool valid() const {
    return reservation_mbps >= 0.0 && limit_mbps >= reservation_mbps &&
           ram_mb > 0.0 && cpu_reservation >= 0.0 &&
           cpu_limit >= cpu_reservation;
  }
};

/// A VM instance: identity, owner, placement, spec, and its current
/// (time-varying) bandwidth demand.
struct Vm {
  VmId id = -1;
  CustomerId customer = -1;
  VmSpec spec;
  int host = -1;               ///< current physical host (-1: not placed)
  double demand_mbps = 0.0;    ///< instantaneous offered bandwidth load
  double cpu_demand = 0.0;     ///< instantaneous offered compute load
  bool migrating = false;      ///< true while a live migration is in flight
  bool destroyed = false;      ///< terminated; resources released

  /// Demand clipped to what the VM is allowed to ask for (its limit).
  double capped_demand() const {
    return demand_mbps < spec.limit_mbps ? demand_mbps : spec.limit_mbps;
  }

  /// CPU demand clipped to the compute-unit limit.
  double capped_cpu_demand() const {
    return cpu_demand < spec.cpu_limit ? cpu_demand : spec.cpu_limit;
  }

  std::string to_string() const;
};

}  // namespace vb::host
