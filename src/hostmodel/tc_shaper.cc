#include "hostmodel/tc_shaper.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace vb::host {

std::vector<double> shape(double nic_capacity_mbps,
                          const std::vector<ShaperClass>& classes) {
  if (nic_capacity_mbps < 0) {
    throw std::invalid_argument("shape: negative capacity");
  }
  std::vector<double> alloc(classes.size(), 0.0);

  // Phase 1: guarantees.  Each class gets min(demand, rate); if the host is
  // overbooked (sum of needed guarantees > capacity) scale proportionally.
  double guaranteed_need = 0.0;
  for (const ShaperClass& c : classes) {
    if (c.rate_mbps < 0 || c.demand_mbps < 0 || c.ceil_mbps < c.rate_mbps) {
      throw std::invalid_argument("shape: invalid class parameters");
    }
    guaranteed_need += std::min(c.demand_mbps, c.rate_mbps);
  }
  double scale = 1.0;
  if (guaranteed_need > nic_capacity_mbps && guaranteed_need > 0) {
    scale = nic_capacity_mbps / guaranteed_need;
  }
  double used = 0.0;
  for (std::size_t i = 0; i < classes.size(); ++i) {
    alloc[i] = std::min(classes[i].demand_mbps, classes[i].rate_mbps) * scale;
    used += alloc[i];
  }

  // Phase 2: borrow.  Water-fill the surplus among classes still wanting
  // more, capped by min(demand, ceil).
  double surplus = nic_capacity_mbps - used;
  constexpr double kEps = 1e-9;
  while (surplus > kEps) {
    // Find the hungriest classes and their smallest remaining headroom.
    std::size_t hungry = 0;
    double min_headroom = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < classes.size(); ++i) {
      double cap = std::min(classes[i].demand_mbps, classes[i].ceil_mbps);
      double headroom = cap - alloc[i];
      if (headroom > kEps) {
        ++hungry;
        min_headroom = std::min(min_headroom, headroom);
      }
    }
    if (hungry == 0) break;
    double share = std::min(surplus / static_cast<double>(hungry), min_headroom);
    if (share <= kEps) break;
    for (std::size_t i = 0; i < classes.size(); ++i) {
      double cap = std::min(classes[i].demand_mbps, classes[i].ceil_mbps);
      if (cap - alloc[i] > kEps) {
        alloc[i] += share;
        surplus -= share;
      }
    }
  }
  return alloc;
}

}  // namespace vb::host
