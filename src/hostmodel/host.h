// Physical host model and the fleet (hosts + VMs) bookkeeping.
//
// A Host is a server with a NIC of fixed capacity hosting a set of VMs.
// Admission control enforces the v-Bundle power-on rule: a VM may be placed
// only if its bandwidth reservation is still available (§III.B).  `Fleet`
// owns all hosts and VMs of the simulated cloud and offers the snapshot
// queries the evaluation needs (per-host utilization, satisfied bandwidth).
#pragma once

#include <optional>
#include <vector>

#include "ckpt/format.h"
#include "hostmodel/tc_shaper.h"
#include "hostmodel/vm.h"

namespace vb::host {

class Fleet;

/// One physical server.  CPU and memory capacities default to effectively
/// unlimited so bandwidth-only scenarios (the paper's main experiments) are
/// unaffected; the multi-metric extension sets them explicitly.
class Host {
 public:
  Host(int id, double nic_capacity_mbps, double cpu_capacity = 1e12,
       double mem_capacity_mb = 1e15)
      : id_(id),
        capacity_mbps_(nic_capacity_mbps),
        cpu_capacity_(cpu_capacity),
        mem_capacity_mb_(mem_capacity_mb) {}

  int id() const { return id_; }
  double capacity_mbps() const { return capacity_mbps_; }
  double cpu_capacity() const { return cpu_capacity_; }
  double mem_capacity_mb() const { return mem_capacity_mb_; }

  const std::vector<VmId>& vms() const { return vms_; }
  std::size_t vm_count() const { return vms_.size(); }

  /// Sum of reservations of hosted VMs plus held (pending-migration) amounts.
  double reserved_mbps() const { return reserved_mbps_; }
  double reserved_cpu() const { return reserved_cpu_; }
  double reserved_mem_mb() const { return reserved_mem_mb_; }
  double free_reservation_mbps() const {
    return capacity_mbps_ - reserved_mbps_;
  }

  /// Power-on / accept check: do the bandwidth, CPU, and memory
  /// reservations all still fit?
  bool can_admit(const VmSpec& spec) const {
    return spec.reservation_mbps <= free_reservation_mbps() &&
           spec.cpu_reservation <= cpu_capacity_ - reserved_cpu_ &&
           spec.ram_mb <= mem_capacity_mb_ - reserved_mem_mb_;
  }

  /// Holds resources for an inbound migration (v-Bundle's receiver "holds
  /// part of its bandwidth waiting for the new VM", §III.C step 3).
  void hold(double mbps) { reserved_mbps_ += mbps; }
  void hold_all(const VmSpec& spec) {
    reserved_mbps_ += spec.reservation_mbps;
    reserved_cpu_ += spec.cpu_reservation;
    reserved_mem_mb_ += spec.ram_mb;
  }
  /// Releases a previously held amount (migration cancelled).
  void release_hold(double mbps) { reserved_mbps_ -= mbps; }
  void release_hold_all(const VmSpec& spec) {
    reserved_mbps_ -= spec.reservation_mbps;
    reserved_cpu_ -= spec.cpu_reservation;
    reserved_mem_mb_ -= spec.ram_mb;
  }

 private:
  friend class Fleet;
  int id_;
  double capacity_mbps_;
  double cpu_capacity_;
  double mem_capacity_mb_;
  double reserved_mbps_ = 0.0;
  double reserved_cpu_ = 0.0;
  double reserved_mem_mb_ = 0.0;
  std::vector<VmId> vms_;
};

/// All hosts and VMs of the cloud; the single source of truth for placement.
class Fleet {
 public:
  /// Creates `num_hosts` hosts with uniform NIC capacity and (optionally)
  /// uniform CPU / memory capacities for the multi-metric extension.
  Fleet(int num_hosts, double nic_capacity_mbps, double cpu_capacity = 1e12,
        double mem_capacity_mb = 1e15);

  int num_hosts() const { return static_cast<int>(hosts_.size()); }
  Host& host(int h) { return hosts_.at(static_cast<std::size_t>(h)); }
  const Host& host(int h) const { return hosts_.at(static_cast<std::size_t>(h)); }

  /// Registers a new (unplaced) VM; returns its id.
  VmId create_vm(CustomerId customer, const VmSpec& spec);

  Vm& vm(VmId id) { return vms_.at(static_cast<std::size_t>(id)); }
  const Vm& vm(VmId id) const { return vms_.at(static_cast<std::size_t>(id)); }
  std::size_t num_vms() const { return vms_.size(); }
  const std::vector<Vm>& all_vms() const { return vms_; }

  /// Places an unplaced VM on `h`.  Fails (returns false) if the host cannot
  /// admit the reservation.
  bool place(VmId id, int h);

  /// Removes a VM from its host (for migration source side).
  void unplace(VmId id);

  /// Terminates a VM: removes it from its host (if placed) and marks it
  /// retired.  Retired VMs keep their id (ids are never reused) but no
  /// longer count toward any host.
  void destroy_vm(VmId id);

  /// True if the VM has been destroyed.
  bool destroyed(VmId id) const { return vm(id).destroyed; }

  /// Atomically moves a VM between hosts, consuming a prior hold of
  /// `vm.spec.reservation_mbps` on the destination if `consume_hold`.
  void migrate(VmId id, int dst, bool consume_hold);

  /// Sets a VM's instantaneous bandwidth demand.
  void set_demand(VmId id, double mbps);

  /// Sets a VM's instantaneous CPU demand (compute units).
  void set_cpu_demand(VmId id, double units);

  // --- snapshot queries ---------------------------------------------------

  /// Offered load of a host: sum of hosted VMs' limit-capped demands, Mbps.
  double host_demand_mbps(int h) const;

  /// Bandwidth utilization of a host in [0, ...): demand / capacity.  This is
  /// the "load" servers report to the aggregation trees.
  double host_utilization(int h) const;

  /// Offered CPU load of a host (sum of limit-capped CPU demands).
  double host_cpu_demand(int h) const;
  /// CPU utilization of a host: cpu demand / cpu capacity.
  double host_cpu_utilization(int h) const;
  /// Memory utilization of a host: hosted RAM / memory capacity.
  double host_mem_utilization(int h) const;

  /// Per-VM bandwidth actually allocated on host `h` under the TC shaper.
  /// Pairs (vm id, allocated Mbps).
  std::vector<std::pair<VmId, double>> shape_host(int h) const;

  /// Total bandwidth actually satisfied across the fleet (sum over hosts of
  /// min-shaped allocations) — the "actual satisfied resource" of Fig. 11.
  double total_satisfied_mbps() const;

  /// Total limit-capped demand across the fleet — Fig. 11's "resource
  /// demand in total".
  double total_demand_mbps() const;

  /// Utilization of every host (index = host id).
  std::vector<double> utilization_snapshot() const;

  /// Unreserved NIC bandwidth of every host (index = host id), Mbps.  The
  /// input to free-capacity accounting: how many more reservations each
  /// server could still admit (src/arena admission, fragmentation metrics).
  std::vector<double> free_reservation_snapshot() const;

  // --- checkpoint/restore (src/ckpt) -------------------------------------
  /// Serializes dynamic placement state: per-host reservations and VM lists
  /// plus every VM record.  Host capacities are static configuration and are
  /// written only so restore can verify the reconstruction matches.
  void ckpt_save(ckpt::Writer& w) const;
  /// Restores into a fleet built with the same constructor arguments; the VM
  /// table is rebuilt wholesale (VMs may have been booted mid-run).  Throws
  /// ckpt::CkptError when host count or capacities disagree.
  void ckpt_restore(ckpt::Reader& r);

 private:
  std::vector<Host> hosts_;
  std::vector<Vm> vms_;
};

}  // namespace vb::host
