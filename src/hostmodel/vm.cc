#include "hostmodel/vm.h"

#include <cstdio>

namespace vb::host {

std::string Vm::to_string() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "vm%d(cust=%d host=%d res=%.0f limit=%.0f demand=%.1f)", id,
                customer, host, spec.reservation_mbps, spec.limit_mbps,
                demand_mbps);
  return buf;
}

}  // namespace vb::host
