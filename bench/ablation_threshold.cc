// Ablation B: threshold sweep plus the cost/benefit migration gate.
//
// §III.E: "if the hosted application is a VoIP-like bandwidth aggressive
// instance, the threshold should be small in order to provide timely relief
// to hot servers" — smaller thresholds involve more servers and move more
// VMs (Fig. 9's 0.3-vs-0.1 comparison), at the cost of more migrations.
// The cost/benefit gate (§VII future work, implemented here) suppresses
// migrations whose relieved deficit does not pay for the bytes moved.
#include "bench_util.h"

using namespace vb;

namespace {

struct Outcome {
  double sd_before = 0, sd_after = 0;
  double max_before = 0, max_after = 0;
  std::uint64_t migrations = 0;
  double megabits_moved = 0;
};

Outcome run(double threshold, double cost_factor) {
  core::CloudConfig cfg;
  cfg.topology.num_pods = 1;
  cfg.topology.racks_per_pod = 5;
  cfg.topology.hosts_per_rack = 20;  // 100 servers
  cfg.seed = 42;
  cfg.vbundle.threshold = threshold;
  cfg.vbundle.migration.cost_factor = cost_factor;
  cfg.vbundle.migration.stability_window_s = 600.0;
  core::VBundleCloud cloud(cfg);

  auto c = cloud.add_customer("Sweep");
  for (int h = 0; h < cloud.num_hosts(); ++h) {
    for (int i = 0; i < 20; ++i) {
      host::VmId v = cloud.fleet().create_vm(c, host::VmSpec{20.0, 100.0});
      cloud.fleet().place(v, h);
    }
  }
  Rng rng(5);
  load::skew_host_utilizations(cloud.fleet(), 0.25, 1.0, rng);

  Outcome out;
  Summary sb = summarize(cloud.utilization_snapshot());
  out.sd_before = sb.stddev;
  out.max_before = sb.max;
  cloud.start_rebalancing(0.0, 1500.0);
  cloud.run_until(4800.0);
  Summary sa = summarize(cloud.utilization_snapshot());
  out.sd_after = sa.stddev;
  out.max_after = sa.max;
  out.migrations = cloud.migrations().completed();
  out.megabits_moved = cloud.migrations().total_megabits_moved();
  return out;
}

}  // namespace

int main() {
  benchutil::print_header(
      "Ablation B - threshold sweep and cost/benefit migration gate",
      "smaller threshold -> more servers involved, flatter cluster, more "
      "migrations; the gate trades balance for fewer/cheaper migrations");

  TextTable t;
  t.set_header({"threshold", "cost gate", "SD before", "SD after",
                "max util after", "migrations", "Gb moved"});
  for (double thr : {0.05, 0.1, 0.183, 0.3, 0.4}) {
    Outcome o = run(thr, 0.0);
    t.add_row({TextTable::num(thr, 3), "off", TextTable::num(o.sd_before, 4),
               TextTable::num(o.sd_after, 4), TextTable::num(o.max_after, 3),
               TextTable::num(static_cast<std::size_t>(o.migrations)),
               TextTable::num(o.megabits_moved / 1000.0, 1)});
  }
  // Gate scale: a 128 MB VM costs 1024 megabits to move; a VM relieving a
  // deficit d for the 600 s stability window buys d*600 megabits.  The gate
  // passes when d*600 >= gate*1024, i.e. d >= gate*1.7 Mbps.
  for (double gate : {5.0, 20.0, 100.0}) {
    Outcome o = run(0.183, gate);
    t.add_row({TextTable::num(0.183, 3), TextTable::num(gate, 0),
               TextTable::num(o.sd_before, 4), TextTable::num(o.sd_after, 4),
               TextTable::num(o.max_after, 3),
               TextTable::num(static_cast<std::size_t>(o.migrations)),
               TextTable::num(o.megabits_moved / 1000.0, 1)});
  }
  std::printf("%s", t.to_string().c_str());
  return 0;
}
