// Figure 14: latency of aggregating a message from the leaves to the root
// versus the number of servers (16..1024).
//
// Paper claims: the raw latency increases roughly linearly while the server
// count grows exponentially, because only the tree height adds hops (each
// extra layer costs ~10 ms of LAN latency, with ~1-2 ms of per-node
// processing); the second series adds the fixed updating-interval wait on
// top (a constant ~30 s offset in the paper's plot).
#include <algorithm>
#include <memory>

#include "aggregation/aggregation_tree.h"
#include "bench_util.h"
#include "pastry/pastry_network.h"
#include "scribe/scribe_network.h"

using namespace vb;

namespace {

struct RootProbe : agg::AggregationListener {
  double last_publish = -1.0;
  void on_global(const agg::TopicId&, const agg::AggValue&,
                 sim::SimTime when) override {
    last_publish = when;
  }
};

struct Result {
  int n;
  int height;
  double latency_ms;
};

Result measure(int n_servers, std::uint64_t seed) {
  // Shape: keep ~16 hosts per rack, grow racks with N.
  net::TopologyConfig tc;
  tc.hosts_per_rack = 16;
  tc.racks_per_pod = std::max(1, n_servers / (16 * 4));
  tc.num_pods = std::min(4, std::max(1, n_servers / (16 * tc.racks_per_pod)));
  // Recompute racks so pods*racks*hosts == n_servers.
  tc.racks_per_pod = n_servers / (16 * tc.num_pods);
  net::Topology topo(tc);

  sim::Simulator sim;
  pastry::PastryNetwork net(&sim, &topo);
  Rng rng(seed);
  std::vector<pastry::BulkFleetEntry> fleet;
  for (int h = 0; h < topo.num_hosts(); ++h) {
    fleet.push_back({rng.next_u128(), h});
  }
  net.bootstrap_bulk(std::move(fleet));
  scribe::ScribeNetwork scribe(&net);
  std::vector<std::unique_ptr<agg::AggregationAgent>> agents;
  for (scribe::ScribeNode* s : scribe.nodes()) {
    agents.push_back(std::make_unique<agg::AggregationAgent>(
        s, agg::PropagationMode::kEager));
  }
  agg::TopicId topic = scribe_group_id("BW_Demand", "vbundle");
  for (auto& a : agents) a->subscribe(topic);
  sim.run_to_completion();

  // Rank members by tree depth and probe the deepest few; the figure's
  // quantity is the worst leaf-to-root aggregation path.
  scribe::ScribeNode* root = scribe.root_of(topic);
  std::vector<std::pair<int, agg::AggregationAgent*>> by_depth;
  for (auto& a : agents) {
    int depth = 0;
    const scribe::ScribeNode* cur = &a->scribe();
    while (true) {
      const scribe::GroupState* st = cur->find_group(topic);
      if (st == nullptr || st->root) break;
      cur = scribe.find(st->parent.id);
      if (cur == nullptr) break;
      ++depth;
    }
    by_depth.emplace_back(depth, a.get());
  }
  std::sort(by_depth.begin(), by_depth.end(),
            [](const auto& x, const auto& y) { return x.first > y.first; });

  RootProbe probe;
  for (auto& a : agents) {
    if (&a->scribe() == root) a->add_listener(&probe);
  }
  Result r;
  r.n = n_servers;
  r.height = by_depth.front().first;
  r.latency_ms = 0.0;
  double value = 1.0;
  for (std::size_t i = 0; i < std::min<std::size_t>(8, by_depth.size()); ++i) {
    double t0 = sim.now();
    by_depth[i].second->set_local(topic, agg::AggValue::of(value += 1.0));
    sim.run_to_completion();
    r.latency_ms = std::max(r.latency_ms, (probe.last_publish - t0) * 1000.0);
  }
  return r;
}

}  // namespace

int main() {
  benchutil::print_header(
      "Figure 14 - leaf-to-root aggregation latency vs number of servers",
      "latency grows ~linearly (with tree height) while servers grow "
      "exponentially; the updating interval adds a constant offset");

  const double kUpdateIntervalMs = 30000.0;  // the paper's constant offset
  TextTable t;
  t.set_header({"servers", "tree height", "raw latency (ms)",
                "with updating interval (ms)"});
  for (int n : {16, 32, 64, 128, 256, 512, 1024}) {
    Result r = measure(n, 42);
    t.add_row({TextTable::num(static_cast<std::size_t>(r.n)),
               TextTable::num(static_cast<std::size_t>(r.height)),
               TextTable::num(r.latency_ms, 2),
               TextTable::num(r.latency_ms + kUpdateIntervalMs, 2)});
  }
  std::printf("%s", t.to_string().c_str());
  std::printf(
      "\nnote: raw latency tracks tree height x LAN hop latency, matching\n"
      "the paper's 'increases linearly as nodes increase exponentially'.\n");
  return 0;
}
