// arena_compare: open-world admission campaigns, v-Bundle vs baselines.
//
// Runs the SAME seeded VC(N, B) request stream (src/arena generator:
// diurnal Poisson arrivals, exponential lifetimes, the paper's two VM
// classes) against three embedders on identically-sized clouds:
//
//   arena_vbundle      the paper's system — DHT placement + shuffling
//   arena_greedy_tree  Oktopus-style oversubscription-aware tree packing
//   arena_competitive  exponential-cost online admission (arXiv:1810.03162
//                      family) on top of tree packing
//
// and reports, per (embedder, fleet size): acceptance rate, booked and
// offered revenue, bisection-bandwidth fragmentation, fleet utilization,
// migration churn, and the accept/reject decision fingerprint.  Everything
// except wall-clock seconds is deterministic (seeded workload, fixed-chunk
// reductions), so the JSON doubles as a cross-machine behaviour pin:
// tools/check_bench.py compares counters EXACTLY and the ratio metrics
// against absolute [0, 1] bands (the BANDED class).
//
// Usage:
//   arena_compare [--sizes=3000,16000] [--requests=N] [--threads=N]
//                 [--out=BENCH_arena.json] [--smoke]
//
// --requests=0 (the default) auto-scales to 1.4 requests per server, the
// point where the offered load overruns fleet capacity by ~1.5x.
// --smoke shrinks to one 256-server fleet so CI can run
// the full matrix on every ctest invocation (bench_arena_smoke); smoke
// output defaults to BENCH_arena.smoke.json so the committed full-run
// numbers are never clobbered.  The JSON is written via temp-file rename,
// so an interrupted run leaves no half-written artifact.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <ctime>
#include <functional>
#include <string>
#include <vector>

#include "arena/arena.h"
#include "common/flags.h"
#include "vbundle/cloud.h"

using namespace vb;

namespace {

double wall_seconds(const std::function<void()>& body) {
  auto t0 = std::chrono::steady_clock::now();
  body();
  auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

core::CloudConfig cloud_config(int servers) {
  core::CloudConfig cfg;
  // 25 hosts/rack, 10 racks/pod at scale; the smoke fleet is 4x4x16.
  if (servers % 250 == 0) {
    cfg.topology.num_pods = servers / 250;
    cfg.topology.racks_per_pod = 10;
    cfg.topology.hosts_per_rack = 25;
  } else {
    cfg.topology.num_pods = 4;
    cfg.topology.racks_per_pod = 4;
    cfg.topology.hosts_per_rack = servers / 16;
  }
  cfg.seed = 42;
  return cfg;
}

struct RowResult {
  arena::AdmissionStats stats;
  std::uint64_t slo_violations = 0;
  std::uint64_t migration_churn = 0;
  double fragmentation = 0.0;
  double utilization = 0.0;
  double seconds = 0.0;
};

RowResult run_campaign(int servers, arena::EmbedderKind kind,
                       std::uint64_t requests, int threads) {
  core::VBundleCloud cloud(cloud_config(servers));

  arena::ArenaConfig cfg;
  cfg.embedder = kind;
  cfg.threads = threads;
  // The paper's shuffling service is part of the v-Bundle offering; the
  // tree-packing baselines have no rebalancer.  Demand shapes are applied
  // for everyone (the shuffler needs utilization skew to act on).
  cfg.enable_rebalancing = kind == arena::EmbedderKind::kVBundle;
  cfg.demand_apply_interval_s = 60.0;
  cfg.generator.seed = 1234;       // same stream for every embedder
  // Arrival rate and request count both scale with the fleet, so every size
  // sees real contention: the live population peaks near ~1.5x capacity and
  // the embedders have to reject.
  cfg.generator.base_arrival_per_s = servers * 0.002;
  cfg.generator.mean_lifetime_s = 1200.0;
  cfg.generator.n_min = 2;
  cfg.generator.n_max = 12;
  cfg.max_requests = requests;
  // Arrival span plus one lifetime: runs past the first rebalance round
  // (t=1500) so the v-Bundle shuffler's migration churn shows up.
  cfg.horizon_s =
      static_cast<double>(requests) / cfg.generator.base_arrival_per_s +
      1200.0;
  cfg.sample_every_s = 60.0;

  arena::Arena a(&cloud, cfg);
  RowResult out;
  out.seconds = wall_seconds([&] { a.run(); });
  out.stats = a.admission().stats();
  out.slo_violations = a.admission().slo_violations();
  out.migration_churn = cloud.migrations().completed();
  out.fragmentation = a.fragmentation();
  out.utilization = a.utilization();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags = Flags::parse(argc - 1, argv + 1);
  bool smoke = flags.has("smoke");
  int threads = flags.get_int("threads", 1);
  // 0 = auto: 1.4 requests per server, the overload point for the default
  // bundle mix (mean 7 VMs at mean 150 Mbps vs 1000 Mbps hosts).
  int requests_flag = flags.get_int("requests", 0);
  std::string out_path = flags.get_string(
      "out", smoke ? "BENCH_arena.smoke.json" : "BENCH_arena.json");

  std::vector<int> sizes;
  {
    std::string spec = flags.get_string("sizes", smoke ? "256" : "3000,16000");
    std::size_t pos = 0;
    while (pos < spec.size()) {
      std::size_t comma = spec.find(',', pos);
      if (comma == std::string::npos) comma = spec.size();
      sizes.push_back(std::stoi(spec.substr(pos, comma - pos)));
      pos = comma + 1;
    }
  }

  const arena::EmbedderKind kinds[] = {arena::EmbedderKind::kVBundle,
                                       arena::EmbedderKind::kGreedyTree,
                                       arena::EmbedderKind::kCompetitive};

#if defined(__clang__)
  std::string compiler = std::string("clang ") + __clang_version__;
#elif defined(__GNUC__)
  std::string compiler = std::string("gcc ") + __VERSION__;
#else
  std::string compiler = "unknown";
#endif
#ifdef VB_BUILD_TYPE
  std::string build_type = VB_BUILD_TYPE;
#else
  std::string build_type = "unknown";
#endif

  std::string json = "{\n";
  json += "  \"bench\": \"arena_compare\",\n";
  json += "  \"schema_version\": 2,\n";
  json += "  \"smoke\": " + std::string(smoke ? "true" : "false") + ",\n";
  json += "  \"timestamp_unix\": " + std::to_string(std::time(nullptr)) + ",\n";
  json += "  \"config\": {\"threads\": " + std::to_string(threads) +
          ", \"shards\": 1, \"compiler\": \"" + compiler +
          "\", \"build_type\": \"" + build_type + "\"},\n";
  json += "  \"results\": [\n";
  bool first = true;
  auto num = [](double v) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    return std::string(buf);
  };

  for (int servers : sizes) {
    std::uint64_t requests = requests_flag > 0
                                 ? static_cast<std::uint64_t>(requests_flag)
                                 : static_cast<std::uint64_t>(servers) * 7 / 5;
    std::printf("== %d servers, %llu requests ==\n", servers,
                static_cast<unsigned long long>(requests));
    for (arena::EmbedderKind kind : kinds) {
      RowResult r = run_campaign(servers, kind, requests, threads);
      const arena::AdmissionStats& s = r.stats;
      std::string name =
          std::string("arena_") + arena::embedder_kind_name(kind);
      std::printf(
          "%-22s accept %5.1f%%  revenue $%9.2f (%4.1f%% of offered)  "
          "frag %.3f  util %.3f  churn %llu  [%.2fs]\n",
          name.c_str(), 100.0 * s.acceptance_rate(), s.revenue,
          s.offered_revenue > 0 ? 100.0 * s.revenue / s.offered_revenue : 0.0,
          r.fragmentation, r.utilization,
          static_cast<unsigned long long>(r.migration_churn), r.seconds);

      char fp[32];
      std::snprintf(fp, sizeof(fp), "0x%016llx",
                    static_cast<unsigned long long>(s.decision_fingerprint));
      if (!first) json += ",\n";
      first = false;
      json += "    {\"name\": \"" + name + "\"";
      json += ", \"servers\": " + std::to_string(servers);
      json += ", \"requests\": " + std::to_string(s.offered);
      json += ", \"accepted\": " + std::to_string(s.accepted);
      json += ", \"rejected_capacity\": " + std::to_string(s.rejected_capacity);
      json += ", \"rejected_cost\": " + std::to_string(s.rejected_cost);
      json += ", \"vms_accepted\": " + std::to_string(s.vms_accepted);
      json += ", \"slo_violations\": " + std::to_string(r.slo_violations);
      json += ", \"migration_churn\": " + std::to_string(r.migration_churn);
      json += ", \"acceptance_rate\": " + num(s.acceptance_rate());
      json += ", \"revenue\": " + num(s.revenue);
      json += ", \"offered_revenue\": " + num(s.offered_revenue);
      json += ", \"revenue_capture\": " +
              num(s.offered_revenue > 0 ? s.revenue / s.offered_revenue : 0.0);
      json += ", \"fragmentation\": " + num(r.fragmentation);
      json += ", \"utilization\": " + num(r.utilization);
      json += ", \"decision_fingerprint\": \"" + std::string(fp) + "\"";
      json += ", \"seconds\": " + num(r.seconds);
      json += "}";
    }
  }
  json += "\n  ]\n}\n";

  // Temp-file + rename: a crashed run leaves the previous artifact intact.
  std::string tmp_path = out_path + ".tmp";
  std::FILE* f = std::fopen(tmp_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "arena_compare: cannot open %s\n", tmp_path.c_str());
    return 1;
  }
  if (std::fputs(json.c_str(), f) < 0 || std::fclose(f) != 0) {
    std::fprintf(stderr, "arena_compare: write to %s failed\n",
                 tmp_path.c_str());
    return 1;
  }
  if (std::rename(tmp_path.c_str(), out_path.c_str()) != 0) {
    std::fprintf(stderr, "arena_compare: rename to %s failed\n",
                 out_path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
