// Shared setup helpers for the paper-reproduction bench binaries.
//
// Each bench binary regenerates one table or figure from the paper's
// evaluation (see DESIGN.md's per-experiment index) and prints the same
// rows/series the paper reports, plus the claim being checked.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "common/stats.h"
#include "common/table.h"
#include "vbundle/cloud.h"
#include "vbundle/metrics.h"
#include "workloads/scenario.h"

namespace vb::benchutil {

/// The paper's large-scale simulation shape: 3000 servers (§IV) arranged as
/// 5 pods x 15 racks x 40 hosts, 1 Gbps NICs, 8:1 ToR oversubscription.
inline core::CloudConfig paper_scale_config(std::uint64_t seed = 42) {
  core::CloudConfig cfg;
  cfg.topology.num_pods = 5;
  cfg.topology.racks_per_pod = 15;
  cfg.topology.hosts_per_rack = 40;
  cfg.topology.host_nic_mbps = 1000.0;
  cfg.topology.tor_oversubscription = 8.0;
  cfg.seed = seed;
  return cfg;
}

/// A reduced "paper scale" for fast CI-style runs: 768 servers
/// (4 pods x 8 racks x 24 hosts).  Used where the full 3000 adds nothing
/// but wall-clock.
inline core::CloudConfig mid_scale_config(std::uint64_t seed = 42) {
  core::CloudConfig cfg;
  cfg.topology.num_pods = 4;
  cfg.topology.racks_per_pod = 8;
  cfg.topology.hosts_per_rack = 24;
  cfg.topology.host_nic_mbps = 1000.0;
  cfg.topology.tor_oversubscription = 8.0;
  cfg.seed = seed;
  return cfg;
}

/// The paper's 15-host testbed (§IV-V).
inline core::CloudConfig testbed_config(std::uint64_t seed = 42) {
  core::CloudConfig cfg;
  cfg.topology.num_pods = 1;
  cfg.topology.racks_per_pod = 4;
  cfg.topology.hosts_per_rack = 4;
  cfg.topology.host_nic_mbps = 1000.0;
  cfg.topology.tor_oversubscription = 8.0;
  cfg.seed = seed;
  return cfg;
}

inline void print_header(const std::string& title, const std::string& claim) {
  std::printf("\n==========================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("paper claim: %s\n", claim.c_str());
  std::printf("==========================================================\n");
}

/// Per-customer placement footprint; see core::placement_footprint.
inline core::PlacementFootprint footprint(const core::VBundleCloud& cloud,
                                          const std::string& /*name*/,
                                          const std::vector<host::VmId>& vms) {
  return core::placement_footprint(cloud.topology(), cloud.fleet(), vms);
}

}  // namespace vb::benchutil
