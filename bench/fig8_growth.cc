// Figure 8: after the initial 5000 VMs, another 5000 VMs are instantiated
// for the same 5 customers — (a) with v-Bundle's placement, (b) with the
// greedy first-fit baseline.
//
// Paper claim: under v-Bundle the doubled population still clusters per
// customer ("keys are chosen randomly and mapped to geographically diverse
// servers, so peers who are adjacent in keys have space to grow"), while
// greedy placement strands newcomers far from their collaborators, forcing
// long cross-rack paths.
//
// The arrival schedule runs through the arena in closed-world mode: the
// original hand-rolled boot loops are exactly a ClosedWorldSource of
// 1000-VM batches with alternating specs (tests/arena/closed_world_equiv
// locks the equivalence), which makes this figure a special case of the
// open-world workload of bench/arena_compare.cc.
#include <map>

#include "arena/arena.h"
#include "bench_util.h"
#include "net/traffic_matrix.h"

using namespace vb;

namespace {

struct Outcome {
  std::map<std::string, std::vector<host::VmId>> placed;
  net::LocalityBreakdown locality;
  double mean_racks = 0.0;
};

net::LocalityBreakdown measure(const core::VBundleCloud& cloud,
                               std::map<std::string, std::vector<host::VmId>>& placed) {
  Rng rng(7);
  std::vector<net::Flow> flows;
  for (const std::string& name : load::paper_customers()) {
    auto f = load::chatting_flows(cloud.fleet(), placed[name], 3, 10.0, rng);
    flows.insert(flows.end(), f.begin(), f.end());
  }
  return net::locality_breakdown(cloud.topology(), flows);
}

/// 1000 single-VM requests per customer, specs alternating by index —
/// Fig. 7's population as an arena batch.
std::vector<arena::ClosedWorldSource::Batch> paper_batches() {
  std::vector<arena::ClosedWorldSource::Batch> batches;
  for (const std::string& name : load::paper_customers()) {
    batches.push_back({name, 1000,
                       {host::VmSpec{100, 200}, host::VmSpec{200, 400}}});
  }
  return batches;
}

Outcome run(bool growth_via_vbundle) {
  core::CloudConfig cfg = benchutil::paper_scale_config();
  cfg.vbundle.max_placement_visits = 4000;
  core::VBundleCloud cloud(cfg);

  arena::ArenaConfig acfg;
  acfg.embedder = arena::EmbedderKind::kVBundle;
  acfg.demand_apply_interval_s = 0;  // pure placement study, no demand churn
  arena::Arena a(&cloud, acfg);

  // Phase 1 (both modes): initial 1000 VMs/customer via v-Bundle, matching
  // Fig. 7's starting state.
  arena::ClosedWorldSource phase1(paper_batches());
  a.run_closed(phase1);

  // Phase 2: another 1000 VMs/customer via v-Bundle (8a) or greedy (8b).
  arena::ClosedWorldSource phase2(paper_batches(), /*first_id=*/5000);
  if (growth_via_vbundle) {
    a.run_closed(phase2);
  } else {
    arena::FirstFitEmbedder greedy(&cloud);
    a.run_closed(phase2, &greedy);
  }

  Outcome out;
  out.placed = a.admission().placed_by_tenant();
  out.locality = measure(cloud, out.placed);
  double racks = 0;
  for (const std::string& name : load::paper_customers()) {
    racks += benchutil::footprint(cloud, name, out.placed[name]).racks_used;
  }
  out.mean_racks = racks / static_cast<double>(load::paper_customers().size());
  return out;
}

}  // namespace

int main() {
  benchutil::print_header(
      "Figure 8 - growth to 10000 VMs: v-Bundle (8a) vs greedy (8b)",
      "v-Bundle keeps grown customers clustered (low cross-rack traffic); "
      "greedy strands newcomers on distant first-fit servers");

  Outcome vb_out = run(/*growth_via_vbundle=*/true);
  Outcome greedy_out = run(/*growth_via_vbundle=*/false);

  TextTable t;
  t.set_header({"policy", "VMs placed", "mean racks/customer",
                "same-rack-or-host", "cross-rack share", "cross-pod share"});
  auto row = [&](const char* name, const Outcome& o) {
    std::size_t total = 0;
    for (const auto& [c, v] : o.placed) total += v.size();
    t.add_row({name, TextTable::num(total), TextTable::num(o.mean_racks, 1),
               TextTable::num(o.locality.same_host + o.locality.same_rack, 3),
               TextTable::num(o.locality.cross_rack(), 3),
               TextTable::num(o.locality.cross_pod, 3)});
  };
  row("v-Bundle (8a)", vb_out);
  row("greedy  (8b)", greedy_out);
  std::printf("%s", t.to_string().c_str());

  // A grown customer legitimately spans several racks, so the telling
  // contrast is how far apart collaborating halves end up: v-Bundle grows
  // clusters outward (neighboring racks, same pod), greedy strands the new
  // half wherever first-fit scan order finds holes (often other pods).
  double improvement = greedy_out.locality.cross_pod /
                       std::max(1e-9, vb_out.locality.cross_pod);
  std::printf(
      "\ncross-pod chatting traffic: greedy ships %.1fx more demand across\n"
      "the datacenter core than v-Bundle after the growth phase.\n",
      improvement);
  return 0;
}
