// Figure 7: VM/PM mappings when instantiating 5000 VMs on 3000 servers for
// 5 customers using v-Bundle's topology-aware placement.
//
// The paper's scatter plot shows each customer's VMs forming tight clusters
// (same rack / adjacent servers) while different customers spread across
// the datacenter.  We reproduce the underlying placement and report, per
// customer: racks used, hosts used, largest rack share, and the locality
// breakdown of intra-customer "chatting" traffic — the quantity the
// clustering exists to optimize ("inter-VM traffic traversing the
// bottleneck switch or router is minimized").
#include <map>

#include "bench_util.h"
#include "net/traffic_matrix.h"

using namespace vb;

int main() {
  benchutil::print_header(
      "Figure 7 - v-Bundle placement of 5000 VMs / 3000 servers / 5 customers",
      "VMs of the same customer cluster in few racks; customers spread "
      "evenly; cross-rack chatting traffic is minimized");

  core::CloudConfig cfg = benchutil::paper_scale_config();
  cfg.vbundle.max_placement_visits = 4000;
  core::VBundleCloud cloud(cfg);

  std::map<std::string, std::vector<host::VmId>> placed;
  int failures = 0;
  for (const std::string& name : load::paper_customers()) {
    auto c = cloud.add_customer(name);
    for (int i = 0; i < 1000; ++i) {
      // Alternate the Fig. 1 instance specs.
      host::VmSpec spec = i % 2 == 0 ? host::VmSpec{100, 200}
                                     : host::VmSpec{200, 400};
      auto r = cloud.boot_vm(c, spec);
      if (r.ok) {
        placed[name].push_back(r.vm);
      } else {
        ++failures;
      }
    }
  }

  TextTable t;
  t.set_header({"customer", "VMs", "hosts", "racks", "max-rack-share",
                "anchor rack"});
  for (const std::string& name : load::paper_customers()) {
    auto fp = benchutil::footprint(cloud, name, placed[name]);
    U128 key = sha1_key(name);
    int anchor = cloud.pastry().global_closest(key).host;
    t.add_row({name, TextTable::num(static_cast<std::size_t>(fp.vms)),
               TextTable::num(static_cast<std::size_t>(fp.hosts_used)),
               TextTable::num(static_cast<std::size_t>(fp.racks_used)),
               TextTable::num(fp.max_rack_share, 3),
               TextTable::num(static_cast<std::size_t>(
                   cloud.topology().rack_of(anchor)))});
  }
  std::printf("%s", t.to_string().c_str());
  std::printf("placement failures: %d (expected 0)\n", failures);

  // Locality of intra-customer chatting traffic under this placement.
  Rng rng(7);
  std::vector<net::Flow> flows;
  for (const std::string& name : load::paper_customers()) {
    auto f = load::chatting_flows(cloud.fleet(), placed[name], 3, 10.0, rng);
    flows.insert(flows.end(), f.begin(), f.end());
  }
  net::LocalityBreakdown lb = net::locality_breakdown(cloud.topology(), flows);
  std::printf(
      "\nchatting-traffic locality (fraction of demand):\n"
      "  same host  %.3f\n  same rack  %.3f\n  same pod   %.3f\n"
      "  cross pod  %.3f\n  => cross-rack (bi-section) share: %.3f\n",
      lb.same_host, lb.same_rack, lb.same_pod, lb.cross_pod, lb.cross_rack());

  // Customer spread across the datacenter: count distinct pods the five
  // anchors land in (paper: "VMs belonging to different customers are
  // dispersed evenly across the whole data center").
  std::map<int, int> pods;
  for (const std::string& name : load::paper_customers()) {
    int anchor = cloud.pastry().global_closest(sha1_key(name)).host;
    pods[cloud.topology().pod_of(anchor)]++;
  }
  std::printf("\ncustomer anchors span %zu of %d pods\n", pods.size(),
              cloud.topology().num_pods());

  // Compact per-customer rack map (rack index : count), the textual
  // equivalent of the Fig. 7 scatter.
  std::printf("\nper-customer rack occupancy (rack:count):\n");
  for (const std::string& name : load::paper_customers()) {
    std::map<int, int> racks;
    for (host::VmId v : placed[name]) {
      int h = cloud.fleet().vm(v).host;
      if (h >= 0) racks[cloud.topology().rack_of(h)]++;
    }
    std::printf("  %-9s", name.c_str());
    for (auto [r, c] : racks) std::printf(" %d:%d", r, c);
    std::printf("\n");
  }
  return 0;
}
