// Figure 9: utilization snapshot of 3000 servers (75000 VMs) before and
// after v-Bundle rebalancing, for thresholds 0.3 and 0.1.
//
// Paper claims: the average utilization line is ~0.6226; before rebalancing
// about half the servers are overloaded; with threshold 0.3 the servers
// above 90% experience relief, with threshold 0.1 those above 70% —
// "the smaller the threshold, the more servers may be involved".
#include "bench_util.h"

using namespace vb;

namespace {

void place_skewed_vms(core::VBundleCloud& cloud, int vms_per_host,
                      std::uint64_t seed) {
  auto c = cloud.add_customer("FigNine");
  for (int h = 0; h < cloud.num_hosts(); ++h) {
    for (int i = 0; i < vms_per_host; ++i) {
      host::VmId v = cloud.fleet().create_vm(c, host::VmSpec{20.0, 100.0});
      if (!cloud.fleet().place(v, h)) break;
    }
  }
  Rng rng(seed);
  load::skew_host_utilizations(cloud.fleet(), 0.25, 1.0, rng);
}

void run_threshold(double threshold) {
  core::CloudConfig cfg = benchutil::paper_scale_config();
  cfg.vbundle.threshold = threshold;
  core::VBundleCloud cloud(cfg);
  place_skewed_vms(cloud, 25, 99);

  std::vector<double> before = cloud.utilization_snapshot();
  Summary sb = summarize(before);

  cloud.start_rebalancing(0.0, 1500.0);  // updates 5 min, rebalance 25 min
  cloud.run_until(4800.0);               // 80 simulated minutes

  std::vector<double> after = cloud.utilization_snapshot();
  Summary sa = summarize(after);
  double ceiling = sb.mean + threshold;

  auto count_over = [](const std::vector<double>& v, double x) {
    int n = 0;
    for (double u : v) n += u > x ? 1 : 0;
    return n;
  };

  std::printf("\n--- threshold = %.2f ---\n", threshold);
  std::printf("average utilization line: %.4f (paper: 0.6226)\n", sb.mean);
  TextTable t;
  t.set_header({"metric", "before", "after"});
  t.add_row({"mean util", TextTable::num(sb.mean, 4), TextTable::num(sa.mean, 4)});
  t.add_row({"stddev", TextTable::num(sb.stddev, 4), TextTable::num(sa.stddev, 4)});
  t.add_row({"max util", TextTable::num(sb.max, 4), TextTable::num(sa.max, 4)});
  t.add_row({"servers > mean+thr",
             TextTable::num(static_cast<std::size_t>(count_over(before, ceiling))),
             TextTable::num(static_cast<std::size_t>(count_over(after, ceiling)))});
  t.add_row({"servers > 0.9",
             TextTable::num(static_cast<std::size_t>(count_over(before, 0.9))),
             TextTable::num(static_cast<std::size_t>(count_over(after, 0.9)))});
  t.add_row({"servers > 0.7",
             TextTable::num(static_cast<std::size_t>(count_over(before, 0.7))),
             TextTable::num(static_cast<std::size_t>(count_over(after, 0.7)))});
  std::printf("%s", t.to_string().c_str());
  std::printf("migrations completed: %llu\n",
              static_cast<unsigned long long>(cloud.migrations().completed()));

  Histogram hb(0.0, 1.2, 12), ha(0.0, 1.2, 12);
  for (double u : before) hb.add(u);
  for (double u : after) ha.add(u);
  std::printf("\nutilization histogram BEFORE:\n%s", hb.ascii(40).c_str());
  std::printf("utilization histogram AFTER:\n%s", ha.ascii(40).c_str());
}

}  // namespace

int main() {
  benchutil::print_header(
      "Figure 9 - before/after utilization snapshot, 3000 servers / 75000 VMs",
      "threshold 0.3 relieves servers >90% util; threshold 0.1 relieves "
      ">70%; smaller threshold -> more servers involved in exchanges");
  run_threshold(0.3);
  run_threshold(0.1);
  return 0;
}
