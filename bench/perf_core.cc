// perf_core: microbenchmark suite for the simulation hot path.
//
// Unlike the fig*/table* benches (which reproduce the paper's results), this
// binary measures how fast the machinery itself runs and emits machine-
// readable JSON (BENCH_core.json) so successive PRs can track the perf
// trajectory.  Four benchmarks, each at 1k/4k/16k simulated servers:
//
//   event_churn        raw event-loop throughput: N self-rescheduling actors
//                      whose closures carry a RouteMsg-sized capture.  Also
//                      runs the identical workload on a copy of the seed's
//                      priority_queue + std::function queue and reports the
//                      speedup of the slab/4-ary-heap rewrite.
//   event_churn_parallel  the same actor churn on the deterministic parallel
//                      engine (sim::ParallelRunner): actors partitioned over
//                      shards, every 16th re-arm crossing shards through the
//                      window-barrier mailboxes.  Runs once at --threads=1
//                      and once at --threads=N, checks the two executions are
//                      bit-identical in event counts, and reports the
//                      parallel speedup.
//   route_throughput   Pastry prefix routing over an oracle-bootstrapped
//                      overlay: random (source, key) lookups per second.
//   aggregation_round  one set_local + tick on every node of a cluster-wide
//                      aggregation tree, to global publication.
//   shuffle_epoch      a full v-Bundle epoch on a skewed cloud: update
//                      ticks, one rebalancing round, migrations settled.
//   ckpt_roundtrip     src/ckpt snapshot + restore of a mid-rebalance cloud
//                      at 64/512/3000 servers (64 in smoke): save wall time
//                      (including the quiesce), restore wall time, image
//                      bytes, and a bit-identical-resume self-check.  Runs
//                      at its own fixed sizes, independent of --sizes.
//
// Usage:
//   perf_core [--sizes=1000,4000,16000] [--out=BENCH_core.json] [--smoke]
//             [--churn-events=2000000] [--routes=20000] [--agg-rounds=5]
//             [--threads=N] [--shards=N]
//             [--trace=<path>] [--metrics=<path>]
//
// --threads sets the worker-thread count for event_churn_parallel (the
// simulated outcome is thread-count-invariant by construction; only the wall
// clock changes).  --shards sets the spatial partition width and IS part of
// the workload definition.  Both are recorded in the JSON's top-level
// "config" block (schema_version 2) together with compiler and build type.
//
// --smoke shrinks everything (<=100 servers, small counts) so CI can
// exercise the harness on every ctest run (the bench_smoke test); smoke
// runs default to BENCH_core.smoke.json so they never clobber the
// committed full-run numbers.  The JSON is written to a temp file and
// renamed into place only after every bench succeeded — a crashed or
// interrupted run leaves no half-written (or empty) BENCH_core.json.
//
// --trace / --metrics attach a TraceRecorder / MetricsRegistry to the
// route-throughput and shuffle-epoch benches and export them at exit (the
// obs overhead measurement described in docs/ARCHITECTURE.md).
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <memory>
#include <functional>
#include <queue>
#include <set>
#include <string>
#include <vector>

#include "common/flags.h"
#include "common/hash.h"
#include "common/rng.h"
#include "aggregation/aggregation_tree.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "pastry/bulk_bootstrap.h"
#include "pastry/pastry_network.h"
#include "scribe/scribe_network.h"
#include "sim/event_queue.h"
#include "sim/parallel_runner.h"
#include "sim/simulator.h"
#include "vbundle/cloud.h"
#include "workloads/scenario.h"

using namespace vb;

namespace {

double wall_seconds(const std::function<void()>& body) {
  auto t0 = std::chrono::steady_clock::now();
  body();
  auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

// ---------------------------------------------------------------------------
// Legacy event queue: byte-for-byte the seed implementation (priority_queue
// of whole events, std::function callback).  Kept here — not in src/ — as
// the fixed comparison baseline for event_churn.
namespace legacy {

struct Event {
  double time;
  std::uint64_t seq;
  std::function<void()> action;
};

class EventQueue {
 public:
  void push(double t, std::function<void()> action) {
    heap_.push(Event{t, next_seq_++, std::move(action)});
  }
  bool empty() const { return heap_.empty(); }
  Event pop() {
    Event e = heap_.top();
    heap_.pop();
    return e;
  }

 private:
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };
  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace legacy

// ---------------------------------------------------------------------------
// event_churn: N actors, each event re-arms itself until `target` events
// have been pushed.  The captured Blob matches the size of the overlay
// transport's largest closure (a RouteMsg in flight, ~96 bytes), so the
// legacy std::function pays its real-world allocation per event.

struct Blob {
  std::uint64_t w[12];
};

template <class Queue>
struct ChurnDriver {
  Queue q;
  std::uint64_t target = 0;
  std::uint64_t pushed = 0;
  std::uint64_t executed = 0;
  std::uint64_t rng_state = 0;
  std::uint64_t sink = 0;  // defeats dead-code elimination

  double next_delay() {
    rng_state += 0x9E3779B97F4A7C15ULL;
    std::uint64_t z = rng_state;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    return 1e-4 * static_cast<double>(1 + (z & 0xFF));
  }

  void arm(double now) {
    ++pushed;
    Blob b{};
    b.w[0] = pushed;
    double t = now + next_delay();
    q.push(t, [this, t, b] { fire(t, b); });
  }

  void fire(double t, const Blob& b) {
    ++executed;
    sink += b.w[0];
    if (pushed < target) arm(t);
  }

  void run(int actors, std::uint64_t total_events, std::uint64_t seed) {
    target = total_events;
    rng_state = seed;
    for (int i = 0; i < actors && pushed < target; ++i) {
      arm(0.0);
    }
    // Drain the way Simulator does: in-place execution when the queue
    // supports it, pop-then-invoke otherwise (the seed's only option).
    if constexpr (requires { q.run_top(); }) {
      while (!q.empty()) q.run_top();
    } else {
      while (!q.empty()) {
        auto e = q.pop();
        e.action();
      }
    }
  }
};

struct ChurnResult {
  std::uint64_t events = 0;
  double seconds = 0.0;
  double legacy_seconds = 0.0;
};

ChurnResult bench_event_churn(int servers, std::uint64_t total_events) {
  ChurnResult r;
  r.events = total_events;
  {
    ChurnDriver<sim::EventQueue> d;
    r.seconds = wall_seconds([&] { d.run(servers, total_events, 1234); });
    if (d.executed != total_events) {
      std::fprintf(stderr, "event_churn: executed %llu != target %llu\n",
                   static_cast<unsigned long long>(d.executed),
                   static_cast<unsigned long long>(total_events));
    }
  }
  {
    ChurnDriver<legacy::EventQueue> d;
    r.legacy_seconds = wall_seconds([&] { d.run(servers, total_events, 1234); });
  }
  return r;
}

// ---------------------------------------------------------------------------
// event_churn_parallel: the actor churn on the deterministic parallel
// engine.  Actors are partitioned evenly over shards; each shard's chains
// re-arm locally, and every 16th re-arm also posts a one-shot event to the
// next shard through the window-barrier mailboxes (so the measurement pays
// the real cross-shard tax, not just embarrassing parallelism).  The
// lookahead is synthetic (no topology here) and the cross-shard post uses a
// 1.5x margin over it, keeping posts clear of window-grid boundaries.

class ParallelChurn {
 public:
  ParallelChurn(sim::ParallelRunner& r, int actors, std::uint64_t total)
      : runner_(r),
        shards_(static_cast<std::size_t>(r.num_shards())),
        actors_per_shard_(std::max(1, actors / r.num_shards())) {
    int ns = r.num_shards();
    for (int s = 0; s < ns; ++s) {
      ShardState& st = shards_[static_cast<std::size_t>(s)];
      st.target = total / static_cast<std::uint64_t>(ns);
      st.rng_state = 0x1234 + 0x9E3779B97F4A7C15ULL * static_cast<unsigned>(s);
    }
  }

  void start() {
    for (int s = 0; s < runner_.num_shards(); ++s) {
      for (int a = 0; a < actors_per_shard_; ++a) {
        if (shards_[static_cast<std::size_t>(s)].pushed <
            shards_[static_cast<std::size_t>(s)].target) {
          arm(s, 0.0);
        }
      }
    }
  }

  std::uint64_t executed() const {
    std::uint64_t n = 0;
    for (const ShardState& st : shards_) n += st.executed;
    return n;
  }

 private:
  struct ShardState {
    std::uint64_t target = 0;
    std::uint64_t pushed = 0;
    std::uint64_t executed = 0;
    std::uint64_t rng_state = 0;
    std::uint64_t sink = 0;
  };

  double next_delay(ShardState& st) {
    st.rng_state += 0x9E3779B97F4A7C15ULL;
    std::uint64_t z = st.rng_state;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    return 1e-4 * static_cast<double>(1 + (z & 0xFF));
  }

  void arm(int s, double now) {
    ShardState& st = shards_[static_cast<std::size_t>(s)];
    ++st.pushed;
    Blob b{};
    b.w[0] = st.pushed;
    if (st.pushed % 16 == 0 && runner_.num_shards() > 1) {
      int dst = (s + 1) % runner_.num_shards();
      double ct = now + runner_.lookahead_s() * 1.5 + next_delay(st);
      runner_.post(dst, ct, [this, dst, ct, b] { fire(dst, ct, b); });
    } else {
      double t = now + next_delay(st);
      runner_.shard(s).schedule_at(t, [this, s, t, b] { fire(s, t, b); });
    }
  }

  void fire(int s, double t, const Blob& b) {
    ShardState& st = shards_[static_cast<std::size_t>(s)];
    ++st.executed;
    st.sink += b.w[0];
    if (st.pushed < st.target) arm(s, t);
  }

  sim::ParallelRunner& runner_;
  std::vector<ShardState> shards_;
  int actors_per_shard_;
};

struct ParallelChurnResult {
  std::uint64_t events = 0;       // executed under --threads=N
  std::uint64_t cross_posts = 0;  // mailbox traffic under --threads=N
  double seconds = 0.0;           // wall time at --threads=N
  double serial_seconds = 0.0;    // same workload at --threads=1
  bool deterministic = false;     // both executions bit-identical in counts
};

ParallelChurnResult bench_event_churn_parallel(int servers,
                                               std::uint64_t total_events,
                                               int shards, int threads) {
  constexpr double kLookaheadS = 0.05;
  ParallelChurnResult r;
  std::uint64_t serial_events = 0;
  std::uint64_t serial_posts = 0;
  {
    sim::ParallelRunner runner(shards, kLookaheadS, 1);
    ParallelChurn churn(runner, servers, total_events);
    r.serial_seconds = wall_seconds([&] {
      churn.start();
      runner.run_until(1e9);
    });
    serial_events = churn.executed();
    serial_posts = runner.cross_shard_posts();
  }
  {
    sim::ParallelRunner runner(shards, kLookaheadS, threads);
    ParallelChurn churn(runner, servers, total_events);
    r.seconds = wall_seconds([&] {
      churn.start();
      runner.run_until(1e9);
    });
    r.events = churn.executed();
    r.cross_posts = runner.cross_shard_posts();
  }
  r.deterministic = r.events == serial_events && r.cross_posts == serial_posts;
  if (!r.deterministic) {
    std::fprintf(stderr,
                 "event_churn_parallel: NON-DETERMINISTIC (%llu/%llu events, "
                 "%llu/%llu posts)\n",
                 static_cast<unsigned long long>(r.events),
                 static_cast<unsigned long long>(serial_events),
                 static_cast<unsigned long long>(r.cross_posts),
                 static_cast<unsigned long long>(serial_posts));
  }
  return r;
}

// ---------------------------------------------------------------------------
// Shared overlay setup for route_throughput / aggregation_round.

net::TopologyConfig topology_for(int servers) {
  net::TopologyConfig t;
  int hpr = servers % 25 == 0 ? 25 : (servers % 8 == 0 ? 8 : servers);
  int racks = servers / hpr;
  int rpp = racks % 10 == 0 ? 10 : (racks % 4 == 0 ? 4 : racks);
  t.hosts_per_rack = hpr;
  t.racks_per_pod = rpp;
  t.num_pods = racks / rpp;
  t.host_nic_mbps = 1000.0;
  t.tor_oversubscription = 8.0;
  return t;
}

std::vector<U128> random_unique_ids(int n, Rng& rng) {
  std::set<U128> seen;
  std::vector<U128> ids;
  ids.reserve(static_cast<std::size_t>(n));
  while (static_cast<int>(ids.size()) < n) {
    U128 id = rng.next_u128();
    if (seen.insert(id).second) ids.push_back(id);
  }
  return ids;
}

struct RouteResult {
  std::uint64_t routes = 0;
  double bootstrap_seconds = 0.0;
  double seconds = 0.0;
  std::uint64_t sim_events = 0;
};

struct NullPayload : pastry::Payload {
  std::size_t wire_bytes() const override { return 16; }
  std::string name() const override { return "perf.null"; }
};

RouteResult bench_route_throughput(int servers, std::uint64_t routes,
                                   obs::TraceRecorder* trace = nullptr,
                                   obs::MetricsRegistry* metrics = nullptr) {
  sim::Simulator sim;
  net::Topology topo(topology_for(servers));
  pastry::PastryNetwork net(&sim, &topo);
  net.set_trace(trace);
  Rng rng(99);
  std::vector<U128> ids = random_unique_ids(servers, rng);

  RouteResult r;
  r.routes = routes;
  r.bootstrap_seconds = wall_seconds(
      [&] { net.bootstrap_bulk(pastry::fleet_one_per_host(ids)); });

  auto payload = std::make_shared<NullPayload>();
  std::uint64_t events_before = sim.events_executed();
  r.seconds = wall_seconds([&] {
    for (std::uint64_t i = 0; i < routes; ++i) {
      pastry::PastryNode& src =
          net.at(ids[rng.index(ids.size())]);
      src.route(rng.next_u128(), payload);
    }
    sim.run_to_completion();
  });
  r.sim_events = sim.events_executed() - events_before;
  if (metrics != nullptr) net.export_metrics(*metrics);
  return r;
}

struct AggResult {
  int rounds = 0;
  double setup_seconds = 0.0;
  double seconds = 0.0;
  std::uint64_t sim_events = 0;
  int tree_height = -1;
};

AggResult bench_aggregation_round(int servers, int rounds) {
  sim::Simulator sim;
  net::Topology topo(topology_for(servers));
  pastry::PastryNetwork net(&sim, &topo);
  Rng rng(7);
  std::vector<U128> ids = random_unique_ids(servers, rng);

  AggResult r;
  r.rounds = rounds;
  agg::TopicId topic = scribe_group_id("BW_Demand", "perf_core");
  std::unique_ptr<scribe::ScribeNetwork> scribes;
  std::vector<std::unique_ptr<agg::AggregationAgent>> agents;
  r.setup_seconds = wall_seconds([&] {
    net.bootstrap_bulk(pastry::fleet_one_per_host(ids));
    scribes = std::make_unique<scribe::ScribeNetwork>(&net);
    agents.reserve(static_cast<std::size_t>(servers));
    for (pastry::PastryNode* n : net.nodes()) {
      agents.push_back(std::make_unique<agg::AggregationAgent>(
          &scribes->at(n->id()), agg::PropagationMode::kPeriodic));
      agents.back()->subscribe(topic);
    }
    sim.run_to_completion();
    r.tree_height = scribes->tree_height(topic);
  });

  std::uint64_t events_before = sim.events_executed();
  r.seconds = wall_seconds([&] {
    for (int round = 0; round < rounds; ++round) {
      for (auto& a : agents) {
        a->set_local(topic, agg::AggValue::of(rng.next_double()));
      }
      for (auto& a : agents) a->tick(topic);
      sim.run_to_completion();
    }
  });
  r.sim_events = sim.events_executed() - events_before;
  return r;
}

struct EpochResult {
  std::uint64_t vms = 0;
  double build_seconds = 0.0;
  double seconds = 0.0;
  std::uint64_t sim_events = 0;
  std::uint64_t migrations = 0;
};

EpochResult bench_shuffle_epoch(int servers, std::uint64_t seed,
                                obs::TraceRecorder* trace = nullptr,
                                obs::MetricsRegistry* metrics = nullptr) {
  core::CloudConfig cfg;
  cfg.topology = topology_for(servers);
  cfg.seed = seed;
  cfg.vbundle.threshold = 0.183;

  EpochResult r;
  std::unique_ptr<core::VBundleCloud> cloud;
  r.build_seconds = wall_seconds([&] {
    cloud = std::make_unique<core::VBundleCloud>(cfg);
    auto c = cloud->add_customer("PerfCore");
    // 10 VMs per host at limit 100 Mbps lets a 1 Gbps host reach full
    // utilization, so the skew below actually produces shedders.
    int vms = servers * 10;
    for (int i = 0; i < vms; ++i) {
      host::VmId v = cloud->fleet().create_vm(c, host::VmSpec{20.0, 100.0});
      cloud->fleet().place(v, i % servers);
    }
    Rng rng(seed);
    load::skew_host_utilizations(cloud->fleet(), 0.2, 0.95, rng);
    r.vms = static_cast<std::uint64_t>(vms);
  });

  cloud->set_trace_recorder(trace);
  std::uint64_t events_before = cloud->simulator().events_executed();
  r.seconds = wall_seconds([&] {
    cloud->start_rebalancing(0.0, 1500.0);
    cloud->run_until(1800.0);  // update ticks + one rebalancing round, settled
    cloud->stop_rebalancing();
  });
  r.sim_events = cloud->simulator().events_executed() - events_before;
  r.migrations = cloud->migrations().completed();
  if (metrics != nullptr) cloud->collect_metrics(*metrics);
  return r;
}

// ---------------------------------------------------------------------------
// ckpt_roundtrip: serialize a 10-VMs/host cloud mid-rebalance (t=1503, inside
// the post-1500 migration burst, so in-flight shuffle state rides the image),
// restore into a fresh reconstruction, and verify the resumed run ends
// bit-identical to the saving one at t=1800.

std::uint64_t ckpt_fnv1a(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xFF;
    h *= 1099511628211ULL;
  }
  return h;
}

std::uint64_t ckpt_fingerprint(core::VBundleCloud& cloud) {
  std::uint64_t h = 1469598103934665603ULL;
  h = ckpt_fnv1a(h, cloud.simulator().events_executed());
  h = ckpt_fnv1a(h, cloud.migrations().completed());
  for (int i = 0; i < cloud.fleet().num_hosts(); ++i) {
    for (host::VmId v : cloud.fleet().host(i).vms()) {
      h = ckpt_fnv1a(h, static_cast<std::uint64_t>(v));
    }
  }
  for (double u : cloud.fleet().utilization_snapshot()) {
    std::uint64_t bits;
    static_assert(sizeof bits == sizeof u);
    std::memcpy(&bits, &u, sizeof bits);
    h = ckpt_fnv1a(h, bits);
  }
  return h;
}

struct CkptResult {
  std::uint64_t vms = 0;
  double save_seconds = 0.0;
  double restore_seconds = 0.0;
  std::uint64_t bytes = 0;
  bool resume_identical = false;
};

CkptResult bench_ckpt_roundtrip(int servers, std::uint64_t seed) {
  core::CloudConfig cfg;
  cfg.topology = topology_for(servers);
  cfg.seed = seed;
  cfg.vbundle.threshold = 0.183;

  auto build = [&](bool place_vms) {
    auto cloud = std::make_unique<core::VBundleCloud>(cfg);
    auto c = cloud->add_customer("PerfCkpt");
    if (place_vms) {
      int vms = servers * 10;
      for (int i = 0; i < vms; ++i) {
        host::VmId v = cloud->fleet().create_vm(c, host::VmSpec{20.0, 100.0});
        cloud->fleet().place(v, i % servers);
      }
      Rng rng(seed);
      load::skew_host_utilizations(cloud->fleet(), 0.2, 0.95, rng);
    }
    cloud->start_rebalancing(0.0, 1500.0);
    return cloud;
  };

  CkptResult r;
  r.vms = static_cast<std::uint64_t>(servers) * 10;

  auto saver = build(/*place_vms=*/true);
  saver->run_until(1503.0);
  std::vector<std::uint8_t> image;
  r.save_seconds = wall_seconds([&] { image = saver->save_checkpoint(); });
  r.bytes = image.size();
  saver->run_until(1800.0);
  saver->stop_rebalancing();
  std::uint64_t want = ckpt_fingerprint(*saver);

  auto restored = build(/*place_vms=*/false);
  r.restore_seconds =
      wall_seconds([&] { restored->restore_checkpoint(image); });
  restored->run_until(1800.0);
  restored->stop_rebalancing();
  r.resume_identical = ckpt_fingerprint(*restored) == want;
  if (!r.resume_identical) {
    std::fprintf(stderr, "ckpt_roundtrip: resumed run DIVERGED at %d servers\n",
                 servers);
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags = Flags::parse(argc - 1, argv + 1);
  bool smoke = flags.get_bool("smoke", false);

  std::vector<int> sizes;
  {
    std::string spec =
        flags.get_string("sizes", smoke ? "64" : "1000,4000,16000");
    std::size_t pos = 0;
    while (pos < spec.size()) {
      std::size_t comma = spec.find(',', pos);
      if (comma == std::string::npos) comma = spec.size();
      sizes.push_back(std::stoi(spec.substr(pos, comma - pos)));
      pos = comma + 1;
    }
  }
  std::uint64_t churn_events = static_cast<std::uint64_t>(
      flags.get_int("churn-events", smoke ? 20000 : 2000000));
  std::uint64_t routes =
      static_cast<std::uint64_t>(flags.get_int("routes", smoke ? 500 : 20000));
  int agg_rounds = flags.get_int("agg-rounds", smoke ? 2 : 5);
  int threads = flags.get_int("threads", 1);
  int shards = flags.get_int("shards", 8);
  if (threads < 1 || shards < 1) {
    std::fprintf(stderr, "perf_core: --threads and --shards must be >= 1\n");
    return 2;
  }
  // Smoke runs get their own default output so CI never overwrites the
  // committed full-run BENCH_core.json with tiny numbers.
  std::string out_path = flags.get_string(
      "out", smoke ? "BENCH_core.smoke.json" : "BENCH_core.json");
  std::string trace_path = flags.get_string("trace", "");
  std::string metrics_path = flags.get_string("metrics", "");

  obs::TraceRecorder trace_rec;
  obs::MetricsRegistry metrics_reg;
  obs::TraceRecorder* trace = trace_path.empty() ? nullptr : &trace_rec;
  obs::MetricsRegistry* metrics =
      metrics_path.empty() ? nullptr : &metrics_reg;

#if defined(__clang__)
  std::string compiler = std::string("clang ") + __clang_version__;
#elif defined(__GNUC__)
  std::string compiler = std::string("gcc ") + __VERSION__;
#else
  std::string compiler = "unknown";
#endif
#ifdef VB_BUILD_TYPE
  std::string build_type = VB_BUILD_TYPE;
#else
  std::string build_type = "unknown";
#endif

  std::string json = "{\n";
  json += "  \"bench\": \"perf_core\",\n";
  json += "  \"schema_version\": 2,\n";
  json += "  \"smoke\": " + std::string(smoke ? "true" : "false") + ",\n";
  json += "  \"timestamp_unix\": " + std::to_string(std::time(nullptr)) + ",\n";
  json += "  \"config\": {\"threads\": " + std::to_string(threads) +
          ", \"shards\": " + std::to_string(shards) + ", \"compiler\": \"" +
          compiler + "\", \"build_type\": \"" + build_type + "\"},\n";
  json += "  \"results\": [\n";
  bool first = true;
  auto emit = [&](const std::string& row) {
    if (!first) json += ",\n";
    first = false;
    json += "    " + row;
  };
  auto num = [](double v) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    return std::string(buf);
  };

  for (int n : sizes) {
    std::printf("== %d servers ==\n", n);

    ChurnResult c = bench_event_churn(n, churn_events);
    double eps = static_cast<double>(c.events) / c.seconds;
    double leps = static_cast<double>(c.events) / c.legacy_seconds;
    std::printf("event_churn        %10.0f ev/s  (legacy %10.0f ev/s, %.2fx)\n",
                eps, leps, eps / leps);
    emit("{\"name\": \"event_churn\", \"servers\": " + std::to_string(n) +
         ", \"events\": " + std::to_string(c.events) +
         ", \"seconds\": " + num(c.seconds) +
         ", \"events_per_sec\": " + num(eps) +
         ", \"legacy_seconds\": " + num(c.legacy_seconds) +
         ", \"legacy_events_per_sec\": " + num(leps) +
         ", \"speedup_vs_legacy\": " + num(eps / leps) + "}");

    ParallelChurnResult pc =
        bench_event_churn_parallel(n, churn_events, shards, threads);
    double peps = static_cast<double>(pc.events) / pc.seconds;
    double seps = static_cast<double>(pc.events) / pc.serial_seconds;
    std::printf(
        "event_churn_parallel %8.0f ev/s at %d threads (1 thread %10.0f "
        "ev/s, %.2fx, %s)\n",
        peps, threads, seps, pc.seconds > 0 ? pc.serial_seconds / pc.seconds : 0.0,
        pc.deterministic ? "deterministic" : "NON-DETERMINISTIC");
    emit("{\"name\": \"event_churn_parallel\", \"servers\": " +
         std::to_string(n) + ", \"threads\": " + std::to_string(threads) +
         ", \"shards\": " + std::to_string(shards) +
         ", \"events\": " + std::to_string(pc.events) +
         ", \"cross_shard_posts\": " + std::to_string(pc.cross_posts) +
         ", \"seconds\": " + num(pc.seconds) +
         ", \"events_per_sec\": " + num(peps) +
         ", \"serial_seconds\": " + num(pc.serial_seconds) +
         ", \"parallel_speedup\": " + num(pc.serial_seconds / pc.seconds) +
         ", \"deterministic\": " +
         std::string(pc.deterministic ? "true" : "false") + "}");
    if (!pc.deterministic) return 1;

    RouteResult rt = bench_route_throughput(n, routes, trace, metrics);
    double rps = static_cast<double>(rt.routes) / rt.seconds;
    std::printf("route_throughput   %10.0f routes/s  (bootstrap %.2fs)\n", rps,
                rt.bootstrap_seconds);
    emit("{\"name\": \"route_throughput\", \"servers\": " + std::to_string(n) +
         ", \"routes\": " + std::to_string(rt.routes) +
         ", \"bootstrap_seconds\": " + num(rt.bootstrap_seconds) +
         ", \"seconds\": " + num(rt.seconds) +
         ", \"routes_per_sec\": " + num(rps) +
         ", \"sim_events\": " + std::to_string(rt.sim_events) +
         ", \"events_per_sec\": " +
         num(static_cast<double>(rt.sim_events) / rt.seconds) + "}");

    AggResult ag = bench_aggregation_round(n, agg_rounds);
    double rps2 = static_cast<double>(ag.rounds) / ag.seconds;
    std::printf("aggregation_round  %10.2f rounds/s (height %d)\n", rps2,
                ag.tree_height);
    emit("{\"name\": \"aggregation_round\", \"servers\": " + std::to_string(n) +
         ", \"rounds\": " + std::to_string(ag.rounds) +
         ", \"setup_seconds\": " + num(ag.setup_seconds) +
         ", \"seconds\": " + num(ag.seconds) +
         ", \"rounds_per_sec\": " + num(rps2) +
         ", \"sim_events\": " + std::to_string(ag.sim_events) +
         ", \"tree_height\": " + std::to_string(ag.tree_height) + "}");

    EpochResult ep = bench_shuffle_epoch(n, 42, trace, metrics);
    std::printf("shuffle_epoch      %10.2fs wall (%llu migrations)\n",
                ep.seconds, static_cast<unsigned long long>(ep.migrations));
    emit("{\"name\": \"shuffle_epoch\", \"servers\": " + std::to_string(n) +
         ", \"vms\": " + std::to_string(ep.vms) +
         ", \"build_seconds\": " + num(ep.build_seconds) +
         ", \"seconds\": " + num(ep.seconds) +
         ", \"sim_events\": " + std::to_string(ep.sim_events) +
         ", \"events_per_sec\": " +
         num(static_cast<double>(ep.sim_events) / ep.seconds) +
         ", \"migrations\": " + std::to_string(ep.migrations) + "}");
  }

  // ckpt_roundtrip has its own size schedule: snapshot cost scales with state
  // volume, not event throughput, so it covers small/medium/large fleets
  // regardless of what --sizes asked the hot-path benches to run.
  std::vector<int> ckpt_sizes = smoke ? std::vector<int>{64}
                                      : std::vector<int>{64, 512, 3000};
  for (int n : ckpt_sizes) {
    CkptResult ck = bench_ckpt_roundtrip(n, 42);
    std::printf(
        "ckpt_roundtrip     %6d servers: save %.4fs, restore %.4fs, "
        "%llu bytes (%s)\n",
        n, ck.save_seconds, ck.restore_seconds,
        static_cast<unsigned long long>(ck.bytes),
        ck.resume_identical ? "resume bit-identical" : "DIVERGED");
    emit("{\"name\": \"ckpt_roundtrip\", \"servers\": " + std::to_string(n) +
         ", \"vms\": " + std::to_string(ck.vms) +
         ", \"save_seconds\": " + num(ck.save_seconds) +
         ", \"restore_seconds\": " + num(ck.restore_seconds) +
         ", \"bytes\": " + std::to_string(ck.bytes) +
         ", \"resume_identical\": " +
         std::string(ck.resume_identical ? "true" : "false") + "}");
    if (!ck.resume_identical) return 1;
  }

  json += "\n  ]\n}\n";
  // Write-to-temp + rename: the result file only ever appears complete.  An
  // interrupted run leaves the previous BENCH_core.json untouched.
  std::string tmp_path = out_path + ".tmp";
  std::FILE* f = std::fopen(tmp_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "perf_core: cannot open %s\n", tmp_path.c_str());
    return 1;
  }
  if (std::fputs(json.c_str(), f) < 0 || std::fclose(f) != 0) {
    std::fprintf(stderr, "perf_core: write to %s failed\n", tmp_path.c_str());
    std::remove(tmp_path.c_str());
    return 1;
  }
  if (std::rename(tmp_path.c_str(), out_path.c_str()) != 0) {
    std::fprintf(stderr, "perf_core: rename %s -> %s failed\n",
                 tmp_path.c_str(), out_path.c_str());
    std::remove(tmp_path.c_str());
    return 1;
  }
  std::printf("\nwrote %s\n", out_path.c_str());

  if (trace != nullptr) {
    trace->write(trace_path);
    std::printf("wrote %s (%zu trace events, %llu dropped)\n",
                trace_path.c_str(), trace->size(),
                static_cast<unsigned long long>(trace->dropped()));
  }
  if (metrics != nullptr) {
    metrics->write(metrics_path);
    std::printf("wrote %s (%zu series)\n", metrics_path.c_str(),
                metrics->series_count());
  }
  return 0;
}
