// Table I: computation overhead for v-Bundle operations.
//
// The paper measures the pub-sub primitives (subscriptions,
// unsubscriptions, publications) plus anycast on 3 Xeon 5150 servers with
// J2SE nanoTime, averaged over 1000 runs.  We re-measure the same
// operations on this implementation with google-benchmark: each measurement
// covers the full protocol execution (every message processed to
// completion) on a 64-server overlay, i.e. the real CPU cost with simulated
// wire latency.
#include <benchmark/benchmark.h>

#include <memory>

#include "aggregation/aggregation_tree.h"
#include "common/hash.h"
#include "common/rng.h"
#include "pastry/pastry_network.h"
#include "scribe/scribe_network.h"

namespace {

using namespace vb;

struct Overlay {
  net::Topology topo;
  sim::Simulator sim;
  pastry::PastryNetwork net;
  std::unique_ptr<scribe::ScribeNetwork> scribe;
  std::vector<std::unique_ptr<agg::AggregationAgent>> agents;

  explicit Overlay(int racks = 8, int hosts = 8)
      : topo([&] {
          net::TopologyConfig c;
          c.num_pods = 1;
          c.racks_per_pod = racks;
          c.hosts_per_rack = hosts;
          return net::Topology(c);
        }()),
        net(&sim, &topo) {
    Rng rng(42);
    std::vector<pastry::BulkFleetEntry> fleet;
    for (int h = 0; h < topo.num_hosts(); ++h) {
      fleet.push_back({rng.next_u128(), h});
    }
    net.bootstrap_bulk(std::move(fleet));
    scribe = std::make_unique<scribe::ScribeNetwork>(&net);
    for (scribe::ScribeNode* s : scribe->nodes()) {
      agents.push_back(std::make_unique<agg::AggregationAgent>(
          s, agg::PropagationMode::kEager));
    }
  }
};

struct Blob : pastry::Payload {
  std::string name() const override { return "blob"; }
};

struct Taker : scribe::ScribeApp {
  bool on_anycast(scribe::ScribeNode&, const scribe::GroupId&,
                  const pastry::PayloadPtr&,
                  const pastry::NodeHandle&) override {
    return true;
  }
};

void BM_Subscription(benchmark::State& state) {
  Overlay o;
  std::uint64_t topic_seq = 0;
  for (auto _ : state) {
    // Fresh topic every iteration: a real tree graft, not a no-op.
    scribe::GroupId g =
        scribe_group_id("bench-topic-" + std::to_string(topic_seq++), "t1");
    o.scribe->nodes()[17]->join(g);
    o.sim.run_to_completion();
  }
}
BENCHMARK(BM_Subscription);

void BM_Unsubscription(benchmark::State& state) {
  Overlay o;
  std::uint64_t topic_seq = 0;
  for (auto _ : state) {
    state.PauseTiming();
    scribe::GroupId g =
        scribe_group_id("bench-topic-" + std::to_string(topic_seq++), "t2");
    o.scribe->nodes()[17]->join(g);
    o.sim.run_to_completion();
    state.ResumeTiming();
    o.scribe->nodes()[17]->leave(g);
    o.sim.run_to_completion();
  }
}
BENCHMARK(BM_Unsubscription);

void BM_Publication64Members(benchmark::State& state) {
  Overlay o;
  scribe::GroupId g = scribe_group_id("pub-topic", "t3");
  for (scribe::ScribeNode* s : o.scribe->nodes()) s->join(g);
  o.sim.run_to_completion();
  auto blob = std::make_shared<Blob>();
  for (auto _ : state) {
    o.scribe->nodes()[3]->multicast(g, blob);
    o.sim.run_to_completion();
  }
}
BENCHMARK(BM_Publication64Members);

void BM_Anycast(benchmark::State& state) {
  Overlay o;
  Taker taker;
  scribe::GroupId g = scribe_group_id("any-topic", "t4");
  for (scribe::ScribeNode* s : o.scribe->nodes()) {
    s->join(g);
    s->add_app(&taker);
  }
  o.sim.run_to_completion();
  auto blob = std::make_shared<Blob>();
  for (auto _ : state) {
    o.scribe->nodes()[40]->anycast(g, blob);
    o.sim.run_to_completion();
  }
}
BENCHMARK(BM_Anycast);

void BM_AggregationUpdate(benchmark::State& state) {
  Overlay o;
  scribe::GroupId g = scribe_group_id("agg-topic", "t5");
  for (auto& a : o.agents) a->subscribe(g);
  o.sim.run_to_completion();
  double v = 0;
  for (auto _ : state) {
    // Leaf update cascades to the root and republishes down (eager mode).
    o.agents[33]->set_local(g, agg::AggValue::of(v += 1.0));
    o.sim.run_to_completion();
  }
}
BENCHMARK(BM_AggregationUpdate);

void BM_PastryRouteHop(benchmark::State& state) {
  Overlay o;
  Rng rng(3);
  auto nodes = o.net.nodes();
  for (auto _ : state) {
    // next_hop is the per-message routing decision on every node.
    benchmark::DoNotOptimize(nodes[11]->next_hop(rng.next_u128()));
  }
}
BENCHMARK(BM_PastryRouteHop);

void BM_Sha1CustomerKey(benchmark::State& state) {
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(vb::sha1_key("customer-" + std::to_string(i++)));
  }
}
BENCHMARK(BM_Sha1CustomerKey);

}  // namespace

BENCHMARK_MAIN();
