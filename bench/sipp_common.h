// Shared driver for the SIPp QoS experiments (paper §V, Figs. 12-13).
//
// Recreates the paper's real-testbed scenario in simulation: a SIPp VM is
// co-located with aggressive Iperf VMs on one of 15 hosts; as the call rate
// ramps (800 cps + 10/s toward 3000), the shared NIC saturates and calls
// fail.  v-Bundle's rebalancing kicks in around t=300 s and migrates load
// away; afterwards the SIPp VM's demand is fully satisfied.
#pragma once

#include <vector>

#include "bench_util.h"
#include "workloads/sip_model.h"

namespace vb::benchutil {

struct SippRun {
  std::vector<std::uint64_t> failed_per_second;
  std::vector<double> offered_rate;
  std::vector<double> response_before_ms;  // samples from t in [100, 300)
  std::vector<double> response_after_ms;   // samples from t in [400, 500)
  std::vector<double> sipp_alloc_mbps;
  double rebalance_start_s = 300.0;
  std::uint64_t migrations = 0;
  std::uint64_t total_failed = 0;
};

inline SippRun run_sipp_experiment(bool enable_vbundle,
                                   std::uint64_t seed = 42) {
  core::CloudConfig cfg = testbed_config(seed);
  cfg.vbundle.threshold = 0.15;            // VoIP-like small threshold (§III.E)
  cfg.vbundle.update_interval_s = 60.0;
  cfg.vbundle.rebalance_interval_s = 75.0;
  core::VBundleCloud cloud(cfg);
  auto cust = cloud.add_customer("SippTenant");

  // The paper's testbed has 15 usable hosts; we leave host 15 empty.
  const int kHosts = 15;
  const int kSippHost = 0;

  // SIPp VM: bandwidth-sensitive, modest reservation, generous limit.
  host::VmId sipp_vm = cloud.fleet().create_vm(cust, host::VmSpec{100, 400});
  cloud.fleet().place(sipp_vm, kSippHost);

  // 12 Iperf VMs co-located on the SIPp host create the bottleneck.
  std::vector<host::VmId> iperf;
  for (int i = 0; i < 12; ++i) {
    host::VmId v = cloud.fleet().create_vm(cust, host::VmSpec{40, 200});
    cloud.fleet().place(v, kSippHost);
    cloud.fleet().set_demand(v, 100.0);
    iperf.push_back(v);
  }

  // Fill the remaining hosts to ~225 VMs total with light background VMs.
  for (int h = 1; h < kHosts; ++h) {
    for (int i = 0; i < 15; ++i) {
      host::VmId v = cloud.fleet().create_vm(cust, host::VmSpec{20, 100});
      cloud.fleet().place(v, h);
      cloud.fleet().set_demand(v, 10.0);
    }
  }

  load::SipConfig sip_cfg;
  load::SipModel sip(sip_cfg);
  SippRun out;

  if (enable_vbundle) {
    // Updates from t=0 every 60 s; first shedding round at t=300 s.
    cloud.start_rebalancing(0.0, out.rebalance_start_s);
  }

  // Per-second QoS loop: set the SIPp VM's demand, shape its current host's
  // NIC, and feed the granted bandwidth into the call model.
  for (int t = 0; t < 500; ++t) {
    cloud.run_until(static_cast<double>(t));
    double demand = sip.demand_mbps(sip.elapsed_s());
    cloud.fleet().set_demand(sipp_vm, demand);
    int sipp_host = cloud.fleet().vm(sipp_vm).host;
    double granted = 0.0;
    for (const auto& [vm, mbps] : cloud.fleet().shape_host(sipp_host)) {
      if (vm == sipp_vm) granted = mbps;
    }
    std::uint64_t failed = sip.step(granted);
    out.failed_per_second.push_back(failed);
    out.offered_rate.push_back(sip.offered_rate_cps(static_cast<double>(t)));
    out.sipp_alloc_mbps.push_back(granted);
    double rt = sip.stats().response_samples_ms.back();
    if (t >= 100 && t < 300) out.response_before_ms.push_back(rt);
    if (t >= 400) out.response_after_ms.push_back(rt);
  }
  out.migrations = cloud.migrations().completed();
  out.total_failed = sip.stats().calls_failed;
  return out;
}

}  // namespace vb::benchutil
