// Ablation A: does the proximity-first DFS order in Scribe anycast actually
// deliver queries to nearby receivers?
//
// DESIGN.md calls out the anycast visiting order ("v-Bundle prefers
// topologically closest candidates", §III.C step 2) as a design choice.  We
// measure the proximity tier of the member that accepts each anycast under
// the real proximity-first walk, and compare with the expected tier if an
// arbitrary (uniform-random) member had answered — the behaviour of an
// order-oblivious DFS.
#include <memory>

#include "bench_util.h"
#include "pastry/pastry_network.h"
#include "scribe/scribe_network.h"

using namespace vb;

namespace {

struct AcceptAll : scribe::ScribeApp {
  pastry::NodeHandle last_acceptor;
  int visited = 0;
  bool on_anycast(scribe::ScribeNode&, const scribe::GroupId&,
                  const pastry::PayloadPtr&,
                  const pastry::NodeHandle&) override {
    return true;
  }
  void on_anycast_accepted(scribe::ScribeNode&, const scribe::GroupId&,
                           const pastry::PayloadPtr&,
                           const pastry::NodeHandle& acceptor,
                           int nodes_visited) override {
    last_acceptor = acceptor;
    visited = nodes_visited;
  }
};

struct Blob : pastry::Payload {};

}  // namespace

int main() {
  benchutil::print_header(
      "Ablation A - anycast receiver proximity: proximity-first DFS vs "
      "random member",
      "proximity-first DFS + Pastry local route convergence finds a "
      "receiver near the sender with high probability");

  net::TopologyConfig tc;
  tc.num_pods = 4;
  tc.racks_per_pod = 4;
  tc.hosts_per_rack = 16;  // 256 servers
  net::Topology topo(tc);
  sim::Simulator sim;
  pastry::PastryNetwork net(&sim, &topo);
  core::TopologyAwareIdAssigner ids(topo, 42);
  std::vector<pastry::BulkFleetEntry> fleet;
  for (int h = 0; h < topo.num_hosts(); ++h) {
    fleet.push_back({ids.id_for_host(h), h});
  }
  net.bootstrap_bulk(std::move(fleet));
  scribe::ScribeNetwork scribe(&net);
  AcceptAll app;
  scribe::GroupId group = scribe_group_id("less-loaded", "vbundle");
  // Half of the servers are members (receivers), spread evenly.
  std::vector<scribe::ScribeNode*> nodes = scribe.nodes();
  std::vector<int> member_hosts;
  for (scribe::ScribeNode* s : nodes) {
    s->add_app(&app);
    if (s->owner().host() % 2 == 0) {
      s->join(group);
      member_hosts.push_back(s->owner().host());
    }
  }
  sim.run_to_completion();

  Rng rng(7);
  int tier_count[4] = {0, 0, 0, 0};
  int rand_tier_count[4] = {0, 0, 0, 0};
  double total_visited = 0;
  const int kTrials = 400;
  for (int i = 0; i < kTrials; ++i) {
    scribe::ScribeNode* origin = nodes[rng.index(nodes.size())];
    origin->anycast(group, std::make_shared<Blob>());
    sim.run_to_completion();
    int tier = static_cast<int>(
        topo.proximity(origin->owner().host(), app.last_acceptor.host));
    ++tier_count[tier];
    total_visited += app.visited;
    // Baseline: a uniformly random member answers.
    int rnd = member_hosts[rng.index(member_hosts.size())];
    ++rand_tier_count[static_cast<int>(
        topo.proximity(origin->owner().host(), rnd))];
  }

  TextTable t;
  t.set_header({"acceptor proximity", "proximity-first DFS", "random member"});
  const char* names[4] = {"same host", "same rack", "same pod", "cross pod"};
  for (int i = 0; i < 4; ++i) {
    t.add_row({names[i],
               TextTable::num(100.0 * tier_count[i] / kTrials, 1) + "%",
               TextTable::num(100.0 * rand_tier_count[i] / kTrials, 1) + "%"});
  }
  std::printf("%s", t.to_string().c_str());
  std::printf("\nmean nodes visited per anycast: %.2f (O(log n) expected; "
              "n = 256)\n", total_visited / kTrials);
  double near = 100.0 * (tier_count[0] + tier_count[1]) / kTrials;
  double rand_near = 100.0 * (rand_tier_count[0] + rand_tier_count[1]) / kTrials;
  std::printf("rack-local acceptors: %.1f%% with proximity-first vs %.1f%% "
              "random\n", near, rand_near);
  return 0;
}
