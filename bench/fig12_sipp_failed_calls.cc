// Figure 12: number of failed SIPp calls over time, before / during / after
// v-Bundle's instance rebalancing.
//
// Paper claims: before t=300 s the co-located Iperf VMs and the ramping call
// rate exceed the host NIC and SIPp loses calls; between ~300 s and ~375 s
// v-Bundle relocates VMs; afterwards the failure count drops to (near) zero.
#include "sipp_common.h"

using namespace vb;

int main() {
  benchutil::print_header(
      "Figure 12 - SIPp failed calls before/during/after rebalancing",
      "failures climb with the call-rate ramp until ~300 s, v-Bundle "
      "migrates VMs during ~300-375 s, failures collapse afterwards");

  benchutil::SippRun with = benchutil::run_sipp_experiment(true);
  benchutil::SippRun without = benchutil::run_sipp_experiment(false);

  TextTable t;
  t.set_header({"t (s)", "offered cps", "sipp alloc (Mbps)",
                "failed/s (v-Bundle)", "failed/s (no rebalance)"});
  for (int ts = 100; ts < 500; ts += 25) {
    auto i = static_cast<std::size_t>(ts);
    t.add_row({TextTable::num(static_cast<std::size_t>(ts)),
               TextTable::num(with.offered_rate[i], 0),
               TextTable::num(with.sipp_alloc_mbps[i], 0),
               TextTable::num(static_cast<std::size_t>(with.failed_per_second[i])),
               TextTable::num(static_cast<std::size_t>(without.failed_per_second[i]))});
  }
  std::printf("%s", t.to_string().c_str());

  auto sum_range = [](const std::vector<std::uint64_t>& v, int lo, int hi) {
    std::uint64_t s = 0;
    for (int i = lo; i < hi; ++i) s += v[static_cast<std::size_t>(i)];
    return s;
  };
  std::printf("\nfailed calls, with v-Bundle: before(0-300)=%llu "
              "during(300-375)=%llu after(375-500)=%llu\n",
              static_cast<unsigned long long>(sum_range(with.failed_per_second, 0, 300)),
              static_cast<unsigned long long>(sum_range(with.failed_per_second, 300, 375)),
              static_cast<unsigned long long>(sum_range(with.failed_per_second, 375, 500)));
  std::printf("failed calls, without:       before=%llu during=%llu after=%llu\n",
              static_cast<unsigned long long>(sum_range(without.failed_per_second, 0, 300)),
              static_cast<unsigned long long>(sum_range(without.failed_per_second, 300, 375)),
              static_cast<unsigned long long>(sum_range(without.failed_per_second, 375, 500)));
  std::printf("migrations performed by v-Bundle: %llu\n",
              static_cast<unsigned long long>(with.migrations));
  return 0;
}
