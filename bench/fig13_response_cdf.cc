// Figure 13: cumulative distribution of SIPp response time, before vs.
// after v-Bundle rebalancing.
//
// Paper claims: before rebalancing only ~10% of calls respond within 10 ms;
// after rebalancing ~90-94.5% respond within 10 ms.
#include "sipp_common.h"

using namespace vb;

int main() {
  benchutil::print_header(
      "Figure 13 - CDF of SIPp response time, before vs after rebalancing",
      "before: ~10% of calls under 10 ms; after: ~90%+ under 10 ms");

  benchutil::SippRun run = benchutil::run_sipp_experiment(true);

  TextTable t;
  t.set_header({"percentile", "before (ms)", "after (ms)"});
  for (double p : {10.0, 25.0, 50.0, 75.0, 90.0, 95.0, 99.0}) {
    t.add_row({TextTable::num(p, 0),
               TextTable::num(percentile(run.response_before_ms, p), 2),
               TextTable::num(percentile(run.response_after_ms, p), 2)});
  }
  std::printf("%s", t.to_string().c_str());

  double before10 = fraction_below(run.response_before_ms, 10.0);
  double after10 = fraction_below(run.response_after_ms, 10.0);
  std::printf("\nfraction of samples with response time <= 10 ms:\n"
              "  before rebalancing: %.3f   (paper: ~0.10)\n"
              "  after rebalancing:  %.3f   (paper: ~0.945)\n",
              before10, after10);

  std::printf("\nCDF points (value ms -> cumulative fraction), after:\n");
  auto cdf = empirical_cdf(run.response_after_ms);
  for (std::size_t i = 0; i < cdf.size(); i += std::max<std::size_t>(1, cdf.size() / 8)) {
    std::printf("  %.2f ms -> %.2f\n", cdf[i].value, cdf[i].fraction);
  }
  return 0;
}
