// Figure 15: CDF of per-host message overhead (messages per round) for 512
// and 1024 servers, running the full v-Bundle service (aggregation
// framework + v-Bundle on top).
//
// Paper claims: for 90% of the servers the overhead stays under ~140
// messages/round and ~40 KB/round at 1024 hosts, and overhead grows
// "organically, in a very logarithmic fashion" with system size.
#include "bench_util.h"

using namespace vb;

namespace {

struct Overhead {
  std::vector<double> msgs_per_round;
  std::vector<double> kb_per_round;
  std::array<std::uint64_t, pastry::TrafficCounters::kCategories> by_category{};
};

Overhead run(int pods, int racks, int hosts, std::uint64_t seed) {
  core::CloudConfig cfg;
  cfg.topology.num_pods = pods;
  cfg.topology.racks_per_pod = racks;
  cfg.topology.hosts_per_rack = hosts;
  cfg.seed = seed;
  cfg.vbundle.threshold = 0.183;
  core::VBundleCloud cloud(cfg);

  auto c = cloud.add_customer("FigFifteen");
  // Demands redrawn every 5 minutes keep the v-Bundle service active in
  // steady state (the paper's hosts run live, varying workloads).
  static load::DemandModel model;  // outlives the cloud run
  model = load::DemandModel{};
  Rng rng(seed + 1);
  for (int h = 0; h < cloud.num_hosts(); ++h) {
    for (int i = 0; i < 8; ++i) {
      host::VmId v = cloud.fleet().create_vm(c, host::VmSpec{20.0, 150.0});
      cloud.fleet().place(v, h);
      model.assign(v, std::make_unique<load::RandomSlotDemand>(
                           0.0, 140.0, 300.0, rng.next_u64()));
    }
  }
  cloud.attach_demand_model(&model, 300.0);

  // Warm up the service so tree joins and the first classification are not
  // charged to the steady-state rounds.
  cloud.start_rebalancing(0.0, 1500.0);
  cloud.run_until(1800.0);
  cloud.pastry().reset_counters();

  // Measure R steady-state update rounds (one round = one 5-min updating
  // interval, including any rebalancing activity that fires within).
  const int kRounds = 10;
  cloud.run_until(1800.0 + kRounds * 300.0);

  Overhead out;
  for (const pastry::PastryNode* n : cloud.pastry().nodes()) {
    const pastry::TrafficCounters& tc = cloud.pastry().counters(n->id());
    out.msgs_per_round.push_back(static_cast<double>(tc.total_msgs()) / kRounds);
    out.kb_per_round.push_back(static_cast<double>(tc.total_bytes()) / 1024.0 /
                               kRounds);
    for (int cat = 0; cat < pastry::TrafficCounters::kCategories; ++cat) {
      out.by_category[static_cast<std::size_t>(cat)] +=
          tc.msgs_sent[static_cast<std::size_t>(cat)];
    }
  }
  return out;
}

void report(const char* label, const Overhead& o) {
  std::printf("\n--- %s ---\n", label);
  TextTable t;
  t.set_header({"percentile", "msgs/round", "KB/round"});
  for (double p : {10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 100.0}) {
    t.add_row({TextTable::num(p, 0),
               TextTable::num(percentile(o.msgs_per_round, p), 1),
               TextTable::num(percentile(o.kb_per_round, p), 1)});
  }
  std::printf("%s", t.to_string().c_str());
  std::printf("90%% of servers send <= %.0f msgs/round and <= %.0f KB/round\n",
              percentile(o.msgs_per_round, 90), percentile(o.kb_per_round, 90));

  std::uint64_t total = 0;
  for (auto v : o.by_category) total += v;
  std::printf("message breakdown:");
  for (int cat = 0; cat < pastry::TrafficCounters::kCategories; ++cat) {
    std::printf(" %s=%.1f%%",
                pastry::to_string(static_cast<pastry::MsgCategory>(cat)),
                total ? 100.0 * static_cast<double>(
                                    o.by_category[static_cast<std::size_t>(cat)]) /
                            static_cast<double>(total)
                      : 0.0);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  benchutil::print_header(
      "Figure 15 - CDF of per-host messages/round, 512 vs 1024 servers",
      "90% of hosts stay under ~140 msgs/round and ~40 KB/round at 1024 "
      "servers; growth with system size is logarithmic, not linear");

  Overhead o512 = run(4, 8, 16, 42);    // 512 servers
  Overhead o1024 = run(4, 16, 16, 42);  // 1024 servers
  report("512 servers", o512);
  report("1024 servers", o1024);

  double m512 = percentile(o512.msgs_per_round, 90);
  double m1024 = percentile(o1024.msgs_per_round, 90);
  std::printf(
      "\ndoubling servers changed the p90 per-host load by %.2fx "
      "(logarithmic growth => ratio stays near 1.0, far from 2.0)\n",
      m1024 / std::max(1e-9, m512));
  return 0;
}
