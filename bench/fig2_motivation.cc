// Figure 2 (motivation): "Example of shared up-links from ToRs crash,
// causing performance degradation for many VMs."
//
// §II argues that wrongly placing an ensemble of chatting VMs across racks
// saturates the shared ToR uplinks, delaying intra-ensemble communication
// AND collaterally hurting *other* tenants that share those uplinks.  We
// quantify both effects under the max-min flow model: the same ensembles
// placed (a) rack-locally (what v-Bundle achieves) vs (b) scattered across
// racks (pattern-oblivious placement).
#include "baselines/random_placement.h"
#include "bench_util.h"
#include "net/traffic_matrix.h"

using namespace vb;

namespace {

struct Outcome {
  double ensemble_satisfaction = 0.0;  ///< chatter carried / offered
  double bystander_satisfaction = 0.0; ///< innocent cross-rack flow
  double worst_uplink_util = 0.0;
};

Outcome evaluate(bool scattered) {
  net::TopologyConfig tc;
  tc.num_pods = 1;
  tc.racks_per_pod = 4;
  tc.hosts_per_rack = 4;
  tc.host_nic_mbps = 1000.0;
  tc.tor_oversubscription = 8.0;  // ToR uplink = 500 Mbps
  net::Topology topo(tc);

  // Ensemble: 8 chatting VM pairs, 100 Mbps each.
  std::vector<net::Flow> flows;
  for (int i = 0; i < 8; ++i) {
    int src, dst;
    if (scattered) {
      src = i % 4;            // rack 0
      dst = 4 + (i % 4);      // rack 1: every pair crosses the uplink
    } else {
      src = i % 4;            // rack-local pairing
      dst = (i + 1) % 4;
    }
    flows.push_back(net::Flow{src, dst, 100.0});
  }
  // A bystander tenant with one modest cross-rack flow (rack 2 -> rack 1),
  // sharing only rack 1's downlink with the ensemble.
  flows.push_back(net::Flow{8, 5, 100.0});

  net::Allocation alloc = net::max_min_allocate(topo, flows);
  Outcome out;
  double offered = 0, carried = 0;
  for (std::size_t i = 0; i + 1 < flows.size(); ++i) {
    offered += flows[i].demand_mbps;
    carried += alloc.rate_mbps[i];
  }
  out.ensemble_satisfaction = carried / offered;
  out.bystander_satisfaction = alloc.rate_mbps.back() / 100.0;
  out.worst_uplink_util = net::max_uplink_utilization(topo, alloc);
  return out;
}

}  // namespace

int main() {
  benchutil::print_header(
      "Figure 2 (motivation) - saturated ToR uplinks hurt many VMs",
      "scattering a chatting ensemble across racks saturates the shared "
      "uplinks, throttling both the ensemble and innocent co-sharers");

  Outcome local = evaluate(false);
  Outcome scattered = evaluate(true);

  TextTable t;
  t.set_header({"placement", "ensemble satisfied", "bystander satisfied",
                "worst uplink util"});
  t.add_row({"rack-local (v-Bundle)", TextTable::num(local.ensemble_satisfaction, 3),
             TextTable::num(local.bystander_satisfaction, 3),
             TextTable::num(local.worst_uplink_util, 3)});
  t.add_row({"cross-rack (oblivious)",
             TextTable::num(scattered.ensemble_satisfaction, 3),
             TextTable::num(scattered.bystander_satisfaction, 3),
             TextTable::num(scattered.worst_uplink_util, 3)});
  std::printf("%s", t.to_string().c_str());
  std::printf(
      "\nwith 8:1 oversubscription, the scattered ensemble's 800 Mbps of\n"
      "chatter competes for a 500 Mbps uplink: everyone on that link "
      "suffers.\n");
  return 0;
}
