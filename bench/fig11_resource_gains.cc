// Figure 11: resource gains during rebalancing for 3000 servers / 75350
// VMs — total bandwidth demand vs. actually satisfied bandwidth over time.
//
// Paper claims: before rebalancing there is a visible gap (VMs at peak are
// "bounded by the hardware limits of the underlying servers" while other
// servers idle); v-Bundle sheds load in ~2 rounds (minutes ~33 and ~57),
// after which "the actual satisfied resource in total is approaching the
// resource demand in total" and all VM demands are met (~1.86-1.89 x 10^6
// Mbps at this scale).
#include "bench_util.h"

using namespace vb;

int main() {
  benchutil::print_header(
      "Figure 11 - total demand vs satisfied bandwidth, 3000 servers",
      "the demand/satisfied gap closes after two shedding rounds; only then "
      "does the customer receive the QoS she pays for");

  core::CloudConfig cfg = benchutil::paper_scale_config();
  cfg.vbundle.threshold = 0.183;
  // Two shedding rounds close the gap (paper: "v-Bundle initiates 2 rounds
  // of load shedding at about minutes 33 and 57").
  cfg.vbundle.max_sheds_per_round = 3;
  core::VBundleCloud cloud(cfg);
  auto c = cloud.add_customer("FigEleven");
  const int total_vms = 75350;
  for (int i = 0; i < total_vms; ++i) {
    host::VmId v = cloud.fleet().create_vm(c, host::VmSpec{20.0, 100.0});
    cloud.fleet().place(v, i % cloud.num_hosts());
  }
  // Skew so a sizable set of servers is demand-overcommitted (>100% of the
  // NIC), which is exactly the "bounded by hardware limits" starvation.
  // Range [0.10, 1.15] gives a cluster mean near the paper's 0.6226 (total
  // demand ~1.87e6 Mbps on 3e6 Mbps of NICs) with a starved tail.
  Rng rng(11);
  load::skew_host_utilizations(cloud.fleet(), 0.10, 1.15, rng);

  cloud.start_rebalancing(0.0, 33.0 * 60.0);

  TextTable t;
  t.set_header({"minute", "demand (1e6 Mbps)", "satisfied (1e6 Mbps)",
                "gap (Mbps)"});
  std::vector<double> gap_series;
  for (int minute = 15; minute <= 75; minute += 3) {
    cloud.run_until(minute * 60.0);
    double demand = cloud.fleet().total_demand_mbps();
    double satisfied = cloud.fleet().total_satisfied_mbps();
    gap_series.push_back(demand - satisfied);
    t.add_row({TextTable::num(static_cast<std::size_t>(minute)),
               TextTable::num(demand / 1e6, 4),
               TextTable::num(satisfied / 1e6, 4),
               TextTable::num(demand - satisfied, 0)});
  }
  std::printf("%s", t.to_string().c_str());

  double gap_before = gap_series.front();
  double gap_after = gap_series.back();
  std::printf(
      "\nunsatisfied demand: %.0f Mbps before -> %.0f Mbps after "
      "(%.1f%% of the initial gap closed)\n",
      gap_before, gap_after,
      gap_before > 0 ? 100.0 * (1.0 - gap_after / gap_before) : 0.0);
  std::printf("migrations completed: %llu\n",
              static_cast<unsigned long long>(cloud.migrations().completed()));
  return 0;
}
