// Ablation C: v-Bundle's decentralized shuffling vs a centralized DRS-like
// rebalancer across system sizes.
//
// §I challenge 2: central load balancing costs O(#VMs x #hosts) per pass
// ("for a cluster containing 100 hosts and 10000 VMs ... nearly 10
// minutes"), while v-Bundle's decisions are local and parallel, so its time
// to stabilize does not grow with the number of servers (Fig. 10).  We
// compare decision cost (central: VM-host pairs examined; v-Bundle:
// protocol messages) and the achieved balance.
#include "baselines/central_rebalancer.h"
#include "bench_util.h"

using namespace vb;

namespace {

struct Row {
  int hosts;
  int vms;
  double vb_sd_after;
  double vb_minutes;         // simulated minutes until settled
  std::uint64_t vb_messages;
  double central_sd_after;
  std::uint64_t central_pairs;
  int central_migrations;
};

void fill_fleet(host::Fleet& fleet, host::CustomerId c, int vms_per_host,
                std::uint64_t seed) {
  for (int h = 0; h < fleet.num_hosts(); ++h) {
    for (int i = 0; i < vms_per_host; ++i) {
      host::VmId v = fleet.create_vm(c, host::VmSpec{20.0, 100.0});
      fleet.place(v, h);
    }
  }
  Rng rng(seed);
  load::skew_host_utilizations(fleet, 0.25, 1.0, rng);
}

Row run(int pods, int racks, int hosts_per_rack, std::uint64_t seed) {
  Row row{};
  const int vms_per_host = 20;

  // v-Bundle (distributed).
  {
    core::CloudConfig cfg;
    cfg.topology.num_pods = pods;
    cfg.topology.racks_per_pod = racks;
    cfg.topology.hosts_per_rack = hosts_per_rack;
    cfg.seed = seed;
    cfg.vbundle.threshold = 0.183;
    core::VBundleCloud cloud(cfg);
    row.hosts = cloud.num_hosts();
    row.vms = row.hosts * vms_per_host;
    auto c = cloud.add_customer("Central");
    fill_fleet(cloud.fleet(), c, vms_per_host, seed + 1);
    cloud.pastry().reset_counters();
    cloud.start_rebalancing(0.0, 1500.0);
    double settled_at = -1;
    double prev_sd = 1e18;
    for (int minute = 0; minute <= 90; minute += 5) {
      cloud.run_until(minute * 60.0);
      double sd = cloud.utilization_stddev();
      if (settled_at < 0 && minute > 30 && prev_sd - sd < 1e-6 &&
          cloud.migrations().in_flight() == 0) {
        settled_at = minute;
      }
      prev_sd = sd;
    }
    row.vb_minutes = settled_at < 0 ? 90 : settled_at;
    row.vb_sd_after = cloud.utilization_stddev();
    row.vb_messages = cloud.pastry().total_msgs();
  }

  // Central DRS-like pass on an identical fleet.
  {
    host::Fleet fleet(row.hosts, 1000.0);
    fill_fleet(fleet, 0, vms_per_host, seed + 1);
    baseline::CentralRebalancer central(&fleet, 0.183);
    baseline::CentralRebalanceResult r = central.rebalance();
    row.central_sd_after = summarize(fleet.utilization_snapshot()).stddev;
    row.central_pairs = r.pairs_examined;
    row.central_migrations = r.migrations;
  }
  return row;
}

}  // namespace

int main() {
  benchutil::print_header(
      "Ablation C - decentralized v-Bundle vs centralized DRS-like balancer",
      "central decision cost grows O(#VMs x #hosts) with system size while "
      "v-Bundle's per-server work stays flat (decisions are local)");

  TextTable t;
  t.set_header({"hosts", "VMs", "vB SD after", "vB settle (min)",
                "vB msgs/host", "central SD", "central pairs",
                "central migr"});
  Row rows[] = {
      run(1, 2, 15, 42),   // 30 hosts
      run(1, 8, 15, 42),   // 120 hosts
      run(2, 16, 15, 42),  // 480 hosts
  };
  for (const Row& r : rows) {
    t.add_row({TextTable::num(static_cast<std::size_t>(r.hosts)),
               TextTable::num(static_cast<std::size_t>(r.vms)),
               TextTable::num(r.vb_sd_after, 4),
               TextTable::num(r.vb_minutes, 0),
               TextTable::num(static_cast<double>(r.vb_messages) / r.hosts, 1),
               TextTable::num(r.central_sd_after, 4),
               TextTable::num(static_cast<std::size_t>(r.central_pairs)),
               TextTable::num(static_cast<std::size_t>(r.central_migrations))});
  }
  std::printf("%s", t.to_string().c_str());
  std::printf(
      "\nv-Bundle settle time stays flat as hosts grow 16x; the central\n"
      "balancer's examined pairs grow with #VMs x #hosts, and its single\n"
      "snapshot must be collected from every host before deciding.\n");
  return 0;
}
