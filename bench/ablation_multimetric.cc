// Ablation D: the §VII multi-metric extension — balancing CPU alongside
// bandwidth.
//
// Scenario: bandwidth is perfectly balanced but CPU is badly skewed.  The
// paper's bandwidth-only shuffler is blind to it; with balance_cpu the same
// decentralized machinery (CPU_Capacity / CPU_Demand trees, bottleneck-
// metric classification) relieves the CPU hotspots too.
#include "bench_util.h"

using namespace vb;

namespace {

struct Outcome {
  double cpu_sd_before = 0, cpu_sd_after = 0;
  double cpu_max_after = 0;
  double bw_sd_after = 0;
  std::uint64_t migrations = 0;
};

Outcome run(bool balance_cpu) {
  core::CloudConfig cfg;
  cfg.topology.num_pods = 1;
  cfg.topology.racks_per_pod = 5;
  cfg.topology.hosts_per_rack = 20;  // 100 servers
  cfg.host_cpu_capacity = 32.0;
  cfg.host_mem_capacity_mb = 1 << 16;
  cfg.seed = 42;
  cfg.vbundle.threshold = 0.15;
  cfg.vbundle.balance_cpu = balance_cpu;
  core::VBundleCloud cloud(cfg);
  auto c = cloud.add_customer("MultiMetric");

  Rng rng(9);
  host::VmSpec spec;
  spec.reservation_mbps = 20;
  spec.limit_mbps = 100;
  spec.cpu_reservation = 0.5;
  spec.cpu_limit = 8.0;
  spec.ram_mb = 128;
  for (int h = 0; h < cloud.num_hosts(); ++h) {
    // Uniform bandwidth (~0.5 util everywhere); skewed CPU per host.
    double host_cpu_target = rng.uniform(0.1, 1.0) * 32.0;
    for (int i = 0; i < 10; ++i) {
      host::VmId v = cloud.fleet().create_vm(c, spec);
      cloud.fleet().place(v, h);
      cloud.fleet().set_demand(v, 50.0);
      cloud.fleet().set_cpu_demand(v, host_cpu_target / 10.0);
    }
  }

  std::vector<double> cpu_before;
  for (int h = 0; h < cloud.num_hosts(); ++h) {
    cpu_before.push_back(cloud.fleet().host_cpu_utilization(h));
  }

  Outcome out;
  out.cpu_sd_before = summarize(cpu_before).stddev;
  cloud.start_rebalancing(0.0, 1500.0);
  cloud.run_until(6000.0);

  std::vector<double> cpu_after, bw_after;
  for (int h = 0; h < cloud.num_hosts(); ++h) {
    cpu_after.push_back(cloud.fleet().host_cpu_utilization(h));
    bw_after.push_back(cloud.fleet().host_utilization(h));
  }
  out.cpu_sd_after = summarize(cpu_after).stddev;
  out.cpu_max_after = summarize(cpu_after).max;
  out.bw_sd_after = summarize(bw_after).stddev;
  out.migrations = cloud.migrations().completed();
  return out;
}

}  // namespace

int main() {
  benchutil::print_header(
      "Ablation D - multi-metric shuffling (CPU + bandwidth, paper SVII)",
      "bandwidth-only shuffling is blind to CPU hotspots; enabling the CPU "
      "trees relieves them with the same decentralized protocol");

  Outcome bw_only = run(false);
  Outcome multi = run(true);

  TextTable t;
  t.set_header({"mode", "CPU SD before", "CPU SD after", "CPU max after",
                "BW SD after", "migrations"});
  t.add_row({"bandwidth-only", TextTable::num(bw_only.cpu_sd_before, 4),
             TextTable::num(bw_only.cpu_sd_after, 4),
             TextTable::num(bw_only.cpu_max_after, 3),
             TextTable::num(bw_only.bw_sd_after, 4),
             TextTable::num(static_cast<std::size_t>(bw_only.migrations))});
  t.add_row({"multi-metric", TextTable::num(multi.cpu_sd_before, 4),
             TextTable::num(multi.cpu_sd_after, 4),
             TextTable::num(multi.cpu_max_after, 3),
             TextTable::num(multi.bw_sd_after, 4),
             TextTable::num(static_cast<std::size_t>(multi.migrations))});
  std::printf("%s", t.to_string().c_str());
  return 0;
}
