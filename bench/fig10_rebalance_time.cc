// Figure 10: the rebalancing process over time — standard deviation of all
// servers' utilizations, for 30 servers (794 VMs) and 3000 servers
// (75350 VMs), updating interval 5 min, rebalancing interval 25 min,
// threshold 0.183.
//
// Paper claims: two sharp SD decreases as the rebalancing rounds fire
// (~minute 33 and ~57), and the 30-server and 3000-server systems take a
// similar time to reach a stable snapshot — decisions are local, so cost
// does not grow with the number of servers.
#include "bench_util.h"

using namespace vb;

namespace {

struct Series {
  std::vector<double> sd_per_minute;  // index = minute
  double settle_minute = -1.0;        // first minute within 2% of final SD
  std::uint64_t migrations = 0;
};

Series run(core::CloudConfig cfg, int total_vms, std::uint64_t seed) {
  cfg.vbundle.threshold = 0.183;
  // A shedder evacuates at most 4 VMs per round, so the hottest servers
  // need two rounds — reproducing the paper's two sharp SD decreases
  // separated by the 25-minute rebalancing interval.
  cfg.vbundle.max_sheds_per_round = 4;
  core::VBundleCloud cloud(cfg);
  auto c = cloud.add_customer("FigTen");
  int hosts = cloud.num_hosts();
  for (int i = 0; i < total_vms; ++i) {
    host::VmId v = cloud.fleet().create_vm(c, host::VmSpec{20.0, 100.0});
    if (!cloud.fleet().place(v, i % hosts)) continue;
  }
  Rng rng(seed);
  load::skew_host_utilizations(cloud.fleet(), 0.25, 1.0, rng);

  // Updates every 5 min from t=0; rebalancing every 25 min, first at 33 min
  // (the paper's observed shedding instants are ~33 and ~57-58 min).
  cloud.start_rebalancing(0.0, 33.0 * 60.0);

  Series out;
  for (int minute = 0; minute <= 75; ++minute) {
    cloud.run_until(minute * 60.0);
    out.sd_per_minute.push_back(cloud.utilization_stddev());
  }
  double final_sd = out.sd_per_minute.back();
  for (std::size_t m = 0; m < out.sd_per_minute.size(); ++m) {
    if (out.sd_per_minute[m] <= final_sd * 1.02) {
      out.settle_minute = static_cast<double>(m);
      break;
    }
  }
  out.migrations = cloud.migrations().completed();
  return out;
}

}  // namespace

int main() {
  benchutil::print_header(
      "Figure 10 - SD of server utilizations over time (30 vs 3000 servers)",
      "sharp SD drops at the rebalancing instants (~33, ~58 min); both "
      "system sizes settle in similar time (decisions are local)");

  core::CloudConfig small;
  small.topology.num_pods = 1;
  small.topology.racks_per_pod = 2;
  small.topology.hosts_per_rack = 15;  // 30 servers
  small.seed = 42;
  Series s30 = run(small, 794, 7);

  Series s3000 = run(benchutil::paper_scale_config(), 75350, 7);

  TextTable t;
  t.set_header({"minute", "SD (30 srv / 794 VMs)", "SD (3000 srv / 75350 VMs)"});
  for (int m = 15; m <= 75; m += 3) {
    t.add_row({TextTable::num(static_cast<std::size_t>(m)),
               TextTable::num(s30.sd_per_minute[static_cast<std::size_t>(m)], 4),
               TextTable::num(s3000.sd_per_minute[static_cast<std::size_t>(m)], 4)});
  }
  std::printf("%s", t.to_string().c_str());

  std::printf("\nsettling minute (within 2%% of final SD): 30 srv = %.0f, "
              "3000 srv = %.0f\n",
              s30.settle_minute, s3000.settle_minute);
  std::printf("SD before -> after: 30 srv %.4f -> %.4f | 3000 srv %.4f -> %.4f\n",
              s30.sd_per_minute[15], s30.sd_per_minute.back(),
              s3000.sd_per_minute[15], s3000.sd_per_minute.back());
  std::printf("migrations: 30 srv = %llu, 3000 srv = %llu\n",
              static_cast<unsigned long long>(s30.migrations),
              static_cast<unsigned long long>(s3000.migrations));
  return 0;
}
